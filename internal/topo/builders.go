package topo

import (
	"fmt"

	"github.com/memcentric/mcdla/internal/units"
)

// Params fixes the interconnect's link technology: N links per node at B
// GB/s per direction. Defaults follow the DGX running example of §III-B.
type Params struct {
	Devices int
	LinksN  int
	LinkBW  units.Bandwidth
}

// DefaultParams returns the DGX-1V running example: 8 devices, N=6 links of
// B=25 GB/s.
func DefaultParams() Params {
	return Params{Devices: 8, LinksN: 6, LinkBW: units.GBps(25)}
}

func (p Params) validate() {
	if p.Devices != 8 {
		// The Figure 5/7 ring constructions are specified for 8 devices;
		// the collective and system models generalize, but the structural
		// topologies are the paper's.
		panic(fmt.Sprintf("topo: builders require 8 devices, got %d", p.Devices))
	}
	if p.LinksN != 6 {
		panic(fmt.Sprintf("topo: builders require N=6 links, got %d", p.LinksN))
	}
	if p.LinkBW <= 0 {
		panic("topo: link bandwidth must be positive")
	}
}

// dgxRings are three Hamiltonian cycles over the 8 GPUs whose union is the
// cube-mesh of Figure 5 (black, gray, and dotted rings), consuming exactly
// six link endpoints per GPU.
var dgxRings = [3][8]int{
	{0, 1, 2, 3, 7, 6, 5, 4},
	{0, 2, 1, 5, 7, 4, 6, 3},
	{0, 6, 2, 4, 1, 7, 3, 5},
}

func devices(n int) []Node {
	out := make([]Node, n)
	for i := range out {
		out[i] = Node{ID: i, Kind: DeviceNode, Name: fmt.Sprintf("D%d", i)}
	}
	return out
}

func appendRingLinks(t *Topology, ring []int, bw units.Bandwidth) {
	for i := range ring {
		t.Links = append(t.Links, Link{A: ring[i], B: ring[(i+1)%len(ring)], BW: bw})
	}
	t.Rings = append(t.Rings, Ring{Nodes: append([]int(nil), ring...)})
}

// CubeMesh builds the DC-DLA device-side interconnect of Figure 5: eight
// devices, three rings, six link endpoints per device.
func CubeMesh(p Params) *Topology {
	p.validate()
	t := &Topology{Name: "cube-mesh", Nodes: devices(p.Devices)}
	for _, r := range dgxRings {
		appendRingLinks(t, r[:], p.LinkBW)
	}
	return t
}

// memoryNodes appends M0..M7 after the devices and returns their IDs.
func memoryNodes(t *Topology, n int) []int {
	ids := make([]int, n)
	for i := 0; i < n; i++ {
		id := len(t.Nodes)
		t.Nodes = append(t.Nodes, Node{ID: id, Kind: MemoryNode, Name: fmt.Sprintf("M%d", i)})
		ids[i] = id
	}
	return ids
}

// MCDLAStar builds the Figure 7(a) derivative design: two of the cube-mesh
// rings survive among the devices; the third ring's links are rearranged so
// each device reaches a dedicated memory-node with two links, and the ring
// that threads through all 16 nodes visits every memory-node twice (the
// paper's 24-hop ring). The light-gray 4th ring over memory-nodes only is
// also present (and useless — footnote 2).
func MCDLAStar(p Params) *Topology {
	p.validate()
	t := &Topology{Name: "mc-dla-star", Nodes: devices(p.Devices)}
	mem := memoryNodes(t, p.Devices)
	// Two balanced device rings (8 hops each).
	appendRingLinks(t, dgxRings[0][:], p.LinkBW)
	appendRingLinks(t, dgxRings[1][:], p.LinkBW)
	// The rearranged third ring: …→Mn→Dn→Mn→Mn-1→… visits each memory node
	// twice: D and M alternate with a doubled M visit (24 hops).
	long := make([]int, 0, 3*p.Devices)
	for d := 0; d < p.Devices; d++ {
		long = append(long, mem[d], d, mem[d])
	}
	// Wire links for the long ring: Dn↔Mn twice (the two star links) and
	// Mn↔Mn+1 once.
	for d := 0; d < p.Devices; d++ {
		t.Links = append(t.Links,
			Link{A: d, B: mem[d], BW: p.LinkBW},
			Link{A: d, B: mem[d], BW: p.LinkBW},
			Link{A: mem[d], B: mem[(d+1)%p.Devices], BW: p.LinkBW},
		)
	}
	t.Rings = append(t.Rings, Ring{Nodes: long})
	// The 4th, memory-only ring of footnote 2.
	t.Rings = append(t.Rings, Ring{Nodes: append([]int(nil), mem...)})
	for d := 0; d < p.Devices; d++ {
		t.Links = append(t.Links, Link{A: mem[d], B: mem[(d+1)%p.Devices], BW: p.LinkBW})
	}
	return t
}

// MCDLAFolded builds the Figure 7(b) design point: the memory-nodes folded
// inward, yielding the paper's three rings of 8, 12, and 20 hops. The
// hand-drawn figure does not pin the exact adjacency; this construction
// honors the published hop counts, the N=6 endpoint budget per device, and
// the property that every device still reaches memory-nodes over dedicated
// links.
func MCDLAFolded(p Params) *Topology {
	p.validate()
	t := &Topology{Name: "mc-dla-folded", Nodes: devices(p.Devices)}
	mem := memoryNodes(t, p.Devices)
	// Ring 1: devices only (8 hops).
	appendRingLinks(t, dgxRings[0][:], p.LinkBW)
	// Ring 2: the lower memory-nodes interleaved (12 hops).
	r2 := []int{0, mem[0], 1, mem[1], 2, mem[2], 3, mem[3], 4, 5, 6, 7}
	appendRingLinks(t, r2, p.LinkBW)
	// Ring 3: a 20-hop closed walk threading every device once, the upper
	// memory-nodes twice, and the lower memory-nodes once.
	r3 := []int{
		4, mem[4], 5, mem[5], 6, mem[6], 7, mem[7],
		0, mem[4], 1, mem[5], 2, mem[6], 3, mem[7],
		mem[0], mem[1], mem[2], mem[3],
	}
	appendRingLinks(t, r3, p.LinkBW)
	return t
}

// MCDLARing builds the proposed Figure 7(c) interconnect: N/2 = 3 rings,
// each alternating device- and memory-nodes (16 hops), so every device has a
// pair of links to the memory-nodes on its logical left and right in every
// ring — 6 links to memory-nodes total, unlocking N×B for BW_AWARE
// virtualization while retaining three 8-device rings for collectives.
func MCDLARing(p Params) *Topology {
	p.validate()
	t := &Topology{Name: "mc-dla-ring", Nodes: devices(p.Devices)}
	mem := memoryNodes(t, p.Devices)
	// Three alternating rings with rotated memory assignments so link
	// lengths stay short in the physical package (Figure 8).
	for r := 0; r < 3; r++ {
		ring := make([]int, 0, 2*p.Devices)
		for i := 0; i < p.Devices; i++ {
			d := dgxRings[r][i]
			ring = append(ring, d, mem[(d+r)%p.Devices])
		}
		appendRingLinks(t, ring, p.LinkBW)
	}
	return t
}

// HCDLAHostLinks reports the per-device link split of the HC-DLA design
// (§II-C / §IV): half the N links go to the host CPU, half remain for the
// device-side interconnect.
func HCDLAHostLinks(p Params) (toHost, toDevices int) {
	return p.LinksN / 2, p.LinksN - p.LinksN/2
}
