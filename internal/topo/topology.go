// Package topo models device-side interconnection networks as node/link
// graphs plus the ring decompositions that the collective-communication
// layer runs over. It builds the paper's four interconnects: the DGX-style
// cube-mesh of Figure 5 (DC-DLA), and the three MC-DLA candidates of
// Figure 7 — the star-attached (a), folded (b), and alternating-ring (c)
// designs — and derives the properties the system simulator consumes:
// ring count and lengths, per-device links toward memory-nodes, and link
// budgets.
package topo

import (
	"fmt"

	"github.com/memcentric/mcdla/internal/units"
)

// NodeKind classifies interconnect endpoints.
type NodeKind int

const (
	// DeviceNode is an accelerator (GPU/TPU) with local HBM.
	DeviceNode NodeKind = iota
	// MemoryNode is a capacity-optimized DIMM carrier (§III-A).
	MemoryNode
	// HostNode is a CPU socket.
	HostNode
	// SwitchNode is a PCIe switch.
	SwitchNode
)

func (k NodeKind) String() string {
	switch k {
	case DeviceNode:
		return "device"
	case MemoryNode:
		return "memory"
	case HostNode:
		return "host"
	case SwitchNode:
		return "switch"
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// Node is one interconnect endpoint.
type Node struct {
	ID   int
	Kind NodeKind
	Name string
}

// Link is one bidirectional high-bandwidth link between two nodes, providing
// BW in each direction (the paper's B = 25 GB/s per NVLINK-class link).
type Link struct {
	A, B int
	BW   units.Bandwidth
}

// Ring is an ordered cycle of node IDs; consecutive entries (and last→first)
// are joined by dedicated links.
type Ring struct {
	Nodes []int
}

// Len reports the ring's hop count (number of links in the cycle).
func (r Ring) Len() int { return len(r.Nodes) }

// Contains reports whether the ring visits node id.
func (r Ring) Contains(id int) bool {
	for _, n := range r.Nodes {
		if n == id {
			return true
		}
	}
	return false
}

// Topology is a device-side interconnect: nodes, links, and the ring
// decomposition used for collectives.
type Topology struct {
	Name  string
	Nodes []Node
	Links []Link
	Rings []Ring
}

// NodesOf returns the IDs of nodes with the given kind, in ID order.
func (t *Topology) NodesOf(kind NodeKind) []int {
	var ids []int
	for _, n := range t.Nodes {
		if n.Kind == kind {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// Degree reports how many link endpoints node id has.
func (t *Topology) Degree(id int) int {
	d := 0
	for _, l := range t.Links {
		if l.A == id || l.B == id {
			d++
		}
	}
	return d
}

// Neighbors returns the IDs adjacent to node id (with multiplicity for
// parallel links).
func (t *Topology) Neighbors(id int) []int {
	var out []int
	for _, l := range t.Links {
		switch id {
		case l.A:
			out = append(out, l.B)
		case l.B:
			out = append(out, l.A)
		}
	}
	return out
}

// LinksToMemory reports how many of a device's links land on memory-nodes.
func (t *Topology) LinksToMemory(device int) int {
	n := 0
	for _, nb := range t.Neighbors(device) {
		if t.Nodes[nb].Kind == MemoryNode {
			n++
		}
	}
	return n
}

// RingHopCounts reports the length of each ring, in ring order.
func (t *Topology) RingHopCounts() []int {
	out := make([]int, len(t.Rings))
	for i, r := range t.Rings {
		out[i] = r.Len()
	}
	return out
}

// MaxRingHops reports the longest ring: the collective-latency bottleneck
// the paper's Figure 7 discussion is about.
func (t *Topology) MaxRingHops() int {
	max := 0
	for _, r := range t.Rings {
		if r.Len() > max {
			max = r.Len()
		}
	}
	return max
}

// Validate checks structural invariants: link endpoints exist, ring
// neighbours are joined by links, and no node exceeds maxDegree link
// endpoints (the paper's N=6 budget).
func (t *Topology) Validate(maxDegree int) error {
	for _, l := range t.Links {
		if l.A < 0 || l.A >= len(t.Nodes) || l.B < 0 || l.B >= len(t.Nodes) {
			return fmt.Errorf("topo: %s: link %d-%d references missing node", t.Name, l.A, l.B)
		}
		if l.A == l.B {
			return fmt.Errorf("topo: %s: self-link at node %d", t.Name, l.A)
		}
		if l.BW <= 0 {
			return fmt.Errorf("topo: %s: link %d-%d has nonpositive bandwidth", t.Name, l.A, l.B)
		}
	}
	for i, n := range t.Nodes {
		if n.ID != i {
			return fmt.Errorf("topo: %s: node %q ID %d at index %d", t.Name, n.Name, n.ID, i)
		}
		if d := t.Degree(n.ID); d > maxDegree {
			return fmt.Errorf("topo: %s: node %q degree %d exceeds budget %d", t.Name, n.Name, d, maxDegree)
		}
	}
	for ri, r := range t.Rings {
		if r.Len() < 2 {
			return fmt.Errorf("topo: %s: ring %d too short", t.Name, ri)
		}
		seen := map[int]int{}
		for _, id := range r.Nodes {
			seen[id]++
		}
		for id, count := range seen {
			// Figure 7(a)'s black ring legitimately visits memory-nodes
			// twice; devices must appear at most once.
			if t.Nodes[id].Kind == DeviceNode && count > 1 {
				return fmt.Errorf("topo: %s: ring %d visits device %d twice", t.Name, ri, id)
			}
		}
		for i := range r.Nodes {
			a, b := r.Nodes[i], r.Nodes[(i+1)%r.Len()]
			if !t.hasLink(a, b) {
				return fmt.Errorf("topo: %s: ring %d edge %d-%d has no link", t.Name, ri, a, b)
			}
		}
	}
	return nil
}

func (t *Topology) hasLink(a, b int) bool {
	for _, l := range t.Links {
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			return true
		}
	}
	return false
}

// DeviceRingParticipation counts, for each ring, how many device-nodes it
// visits — collectives only carry device-originated data (§III-B footnote 2).
func (t *Topology) DeviceRingParticipation() []int {
	out := make([]int, len(t.Rings))
	for i, r := range t.Rings {
		seen := map[int]bool{}
		for _, id := range r.Nodes {
			if t.Nodes[id].Kind == DeviceNode && !seen[id] {
				seen[id] = true
				out[i]++
			}
		}
	}
	return out
}
