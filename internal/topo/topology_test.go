package topo

import (
	"testing"

	"github.com/memcentric/mcdla/internal/units"
)

func TestCubeMeshStructure(t *testing.T) {
	tp := CubeMesh(DefaultParams())
	if err := tp.Validate(6); err != nil {
		t.Fatal(err)
	}
	if got := len(tp.NodesOf(DeviceNode)); got != 8 {
		t.Fatalf("device count = %d, want 8", got)
	}
	if got := len(tp.Rings); got != 3 {
		t.Fatalf("ring count = %d, want 3 (Figure 5)", got)
	}
	for i, h := range tp.RingHopCounts() {
		if h != 8 {
			t.Errorf("ring %d hop count = %d, want 8", i, h)
		}
	}
	// Every GPU consumes exactly its six NVLINK endpoints.
	for _, d := range tp.NodesOf(DeviceNode) {
		if deg := tp.Degree(d); deg != 6 {
			t.Errorf("device %d degree = %d, want 6", d, deg)
		}
	}
	if mem := tp.NodesOf(MemoryNode); len(mem) != 0 {
		t.Fatalf("cube-mesh has %d memory nodes", len(mem))
	}
}

func TestMCDLAStarStructure(t *testing.T) {
	tp := MCDLAStar(DefaultParams())
	if err := tp.Validate(6); err != nil {
		t.Fatal(err)
	}
	if got := len(tp.NodesOf(MemoryNode)); got != 8 {
		t.Fatalf("memory node count = %d, want 8", got)
	}
	// §III-B: two 8-hop rings, one 24-hop ring (memory nodes visited
	// twice), and the useless memory-only 4th ring.
	hops := tp.RingHopCounts()
	want := []int{8, 8, 24, 8}
	if len(hops) != len(want) {
		t.Fatalf("ring count = %d, want %d", len(hops), len(want))
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Errorf("ring %d hops = %d, want %d", i, hops[i], want[i])
		}
	}
	if got := tp.MaxRingHops(); got != 24 {
		t.Fatalf("max ring hops = %d, want 24", got)
	}
	// Each device reaches its designated memory-node over two links.
	for _, d := range tp.NodesOf(DeviceNode) {
		if got := tp.LinksToMemory(d); got != 2 {
			t.Errorf("device %d memory links = %d, want 2", d, got)
		}
	}
	// The 4th ring carries no devices (footnote 2).
	parts := tp.DeviceRingParticipation()
	if parts[3] != 0 {
		t.Fatalf("memory-only ring visits %d devices", parts[3])
	}
}

func TestMCDLAFoldedStructure(t *testing.T) {
	tp := MCDLAFolded(DefaultParams())
	if err := tp.Validate(6); err != nil {
		t.Fatal(err)
	}
	hops := tp.RingHopCounts()
	want := []int{8, 12, 20}
	if len(hops) != 3 {
		t.Fatalf("ring count = %d, want 3", len(hops))
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Errorf("ring %d hops = %d, want %d (Figure 7(b))", i, hops[i], want[i])
		}
	}
	// All three rings carry all eight devices.
	for i, p := range tp.DeviceRingParticipation() {
		if p != 8 {
			t.Errorf("ring %d device participation = %d, want 8", i, p)
		}
	}
}

func TestMCDLARingStructure(t *testing.T) {
	tp := MCDLARing(DefaultParams())
	if err := tp.Validate(6); err != nil {
		t.Fatal(err)
	}
	hops := tp.RingHopCounts()
	if len(hops) != 3 {
		t.Fatalf("ring count = %d, want N/2 = 3", len(hops))
	}
	for i, h := range hops {
		if h != 16 {
			t.Errorf("ring %d hops = %d, want 16 (8 devices + 8 memory nodes)", i, h)
		}
	}
	// The key property of Figure 7(c): every device link lands on a
	// memory-node, unlocking all N=6 links for BW_AWARE virtualization.
	for _, d := range tp.NodesOf(DeviceNode) {
		if got := tp.LinksToMemory(d); got != 6 {
			t.Errorf("device %d memory links = %d, want 6", d, got)
		}
	}
	// Devices and memory-nodes strictly alternate in every ring.
	for ri, r := range tp.Rings {
		for i, id := range r.Nodes {
			next := r.Nodes[(i+1)%r.Len()]
			if tp.Nodes[id].Kind == tp.Nodes[next].Kind {
				t.Fatalf("ring %d has adjacent same-kind nodes %d,%d", ri, id, next)
			}
		}
	}
	// Memory nodes also consume exactly six endpoints.
	for _, m := range tp.NodesOf(MemoryNode) {
		if deg := tp.Degree(m); deg != 6 {
			t.Errorf("memory node %d degree = %d, want 6", m, deg)
		}
	}
}

func TestRingBandwidthAccounting(t *testing.T) {
	// 3 rings × 25 GB/s per link direction = 75 GB/s of collective
	// bandwidth per device in both cube-mesh and MC-DLA ring.
	for _, build := range []func(Params) *Topology{CubeMesh, MCDLARing} {
		tp := build(DefaultParams())
		var ringBW units.Bandwidth
		for range tp.Rings {
			ringBW += units.GBps(25)
		}
		if ringBW.GBps() != 75 {
			t.Fatalf("%s: aggregate ring bandwidth = %v, want 75 GB/s", tp.Name, ringBW)
		}
	}
}

func TestHCDLALinkSplit(t *testing.T) {
	toHost, toDev := HCDLAHostLinks(DefaultParams())
	if toHost != 3 || toDev != 3 {
		t.Fatalf("HC-DLA split = %d/%d, want 3/3", toHost, toDev)
	}
}

func TestValidateCatchesBadLink(t *testing.T) {
	tp := &Topology{
		Name:  "bad",
		Nodes: devices(8),
		Links: []Link{{A: 0, B: 99, BW: units.GBps(25)}},
	}
	if err := tp.Validate(6); err == nil {
		t.Fatal("expected error for dangling link")
	}
}

func TestValidateCatchesDegreeOverflow(t *testing.T) {
	tp := &Topology{Name: "bad", Nodes: devices(2)}
	for i := 0; i < 7; i++ {
		tp.Links = append(tp.Links, Link{A: 0, B: 1, BW: units.GBps(25)})
	}
	if err := tp.Validate(6); err == nil {
		t.Fatal("expected error for degree > 6")
	}
}

func TestValidateCatchesSelfLink(t *testing.T) {
	tp := &Topology{Name: "bad", Nodes: devices(2), Links: []Link{{A: 1, B: 1, BW: units.GBps(25)}}}
	if err := tp.Validate(6); err == nil {
		t.Fatal("expected error for self link")
	}
}

func TestValidateCatchesRingWithoutLinks(t *testing.T) {
	tp := &Topology{
		Name:  "bad",
		Nodes: devices(3),
		Links: []Link{{A: 0, B: 1, BW: units.GBps(25)}},
		Rings: []Ring{{Nodes: []int{0, 1, 2}}},
	}
	if err := tp.Validate(6); err == nil {
		t.Fatal("expected error for ring edge without link")
	}
}

func TestValidateCatchesDeviceVisitedTwice(t *testing.T) {
	tp := &Topology{
		Name:  "bad",
		Nodes: devices(2),
		Links: []Link{{A: 0, B: 1, BW: units.GBps(25)}, {A: 0, B: 1, BW: units.GBps(25)}},
		Rings: []Ring{{Nodes: []int{0, 1, 0, 1}}},
	}
	if err := tp.Validate(6); err == nil {
		t.Fatal("expected error for device visited twice in a ring")
	}
}

func TestBuildersPanicOnWrongScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-8-device params")
		}
	}()
	CubeMesh(Params{Devices: 4, LinksN: 6, LinkBW: units.GBps(25)})
}

func TestNeighborsSymmetric(t *testing.T) {
	tp := MCDLARing(DefaultParams())
	for _, n := range tp.Nodes {
		for _, nb := range tp.Neighbors(n.ID) {
			found := false
			for _, back := range tp.Neighbors(nb) {
				if back == n.ID {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("asymmetric adjacency %d -> %d", n.ID, nb)
			}
		}
	}
}

func TestNodeKindStrings(t *testing.T) {
	cases := map[NodeKind]string{
		DeviceNode: "device", MemoryNode: "memory", HostNode: "host",
		SwitchNode: "switch", NodeKind(99): "NodeKind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("kind %d = %q, want %q", int(k), got, want)
		}
	}
}
