// Timeline: the multi-process Chrome trace-event document behind
// `mcdla run/plane/fleet -timeline` and `?timeline=1` — the simulator face
// of the telemetry plane. Every value here is virtual-clock simulation
// output: construction is sequential and WriteChrome's ordering is total,
// so the emitted bytes are identical at any engine parallelism and can be
// golden-pinned like any other artifact.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Fleet job lifecycle categories: a Queue span covers arrival → start, a
// Service span covers start → finish on the placed pod.
const (
	Queue   Category = "queue"
	Service Category = "service"
)

// Lane is one named horizontal row of a timeline process — a Chrome thread.
// ID is the Chrome tid; lanes render top-to-bottom by ID.
type Lane struct {
	ID    int
	Name  string
	Spans []Span
}

// Process is one Chrome process group: a device in a plane sweep, a cluster
// in a fleet simulation.
type Process struct {
	Name  string
	Lanes []Lane
}

// Timeline is a multi-process trace document.
type Timeline struct {
	Label     string
	Processes []Process
}

// laneName names the fixed category lanes a Log fans out into.
func laneName(tid int) string {
	switch tid {
	case 0:
		return "compute"
	case 1:
		return "stall/sync"
	case 2:
		return "offload"
	case 3:
		return "prefetch"
	case 4:
		return "inter-sync"
	}
	return "other"
}

// FromLog converts a single-device span log into a process whose lanes are
// the category tracks (compute, stall/sync, offload, prefetch, inter-sync),
// preserving span order within each lane. Empty lanes are dropped.
func FromLog(name string, l *Log) Process {
	byTrack := map[int][]Span{}
	for _, s := range l.Spans {
		t := track(s.Category)
		byTrack[t] = append(byTrack[t], s)
	}
	ids := make([]int, 0, len(byTrack))
	for id := range byTrack {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	p := Process{Name: name}
	for _, id := range ids {
		p.Lanes = append(p.Lanes, Lane{ID: id, Name: laneName(id), Spans: byTrack[id]})
	}
	return p
}

// AddProcess appends a process built from a span log.
func (t *Timeline) AddProcess(name string, l *Log) {
	t.Processes = append(t.Processes, FromLog(name, l))
}

// chromeMeta is a Chrome "M" metadata event naming a process or thread.
type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// Validate checks every process's spans through the Log invariants.
func (t *Timeline) Validate() error {
	for _, p := range t.Processes {
		for _, lane := range p.Lanes {
			l := Log{Label: p.Name, Spans: lane.Spans}
			if err := l.Validate(); err != nil {
				return fmt.Errorf("trace: process %q lane %q: %v", p.Name, lane.Name, err)
			}
		}
	}
	return nil
}

// WriteChrome serializes the timeline as one Chrome trace-event JSON
// document: process_name/thread_name metadata events first (so Perfetto
// labels the lanes), then every span as an "X" complete event. The sort is
// total — (pid, tid, ts, dur, name) — so the bytes are deterministic for a
// given timeline regardless of how it was assembled.
func (t *Timeline) WriteChrome(w io.Writer) error {
	var metas []chromeMeta
	var events []chromeEvent
	for pi, p := range t.Processes {
		pid := pi + 1
		metas = append(metas, chromeMeta{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]string{"name": p.Name},
		})
		for _, lane := range p.Lanes {
			metas = append(metas, chromeMeta{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: lane.ID,
				Args: map[string]string{"name": lane.Name},
			})
			for _, s := range lane.Spans {
				events = append(events, chromeEvent{
					Name: s.Name,
					Cat:  string(s.Category),
					Ph:   "X",
					Ts:   s.Start.Microseconds(),
					Dur:  s.Duration().Microseconds(),
					Pid:  pid,
					Tid:  lane.ID,
				})
			}
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.Dur != b.Dur {
			return a.Dur < b.Dur
		}
		return a.Name < b.Name
	})
	// Marshal events one per line: diffable goldens, and Perfetto accepts
	// any whitespace inside the array.
	if _, err := fmt.Fprintf(w, "{\"label\":%q,\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", t.Label); err != nil {
		return err
	}
	n := 0
	writeOne := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		sep := ",\n"
		if n == 0 {
			sep = ""
		}
		if n > 0 {
			if _, err := io.WriteString(w, sep); err != nil {
				return err
			}
		}
		n++
		_, err = w.Write(b)
		return err
	}
	for _, m := range metas {
		if err := writeOne(m); err != nil {
			return err
		}
	}
	for _, e := range events {
		if err := writeOne(e); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}
