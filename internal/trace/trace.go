// Package trace records simulated execution timelines — per-layer compute
// spans, DMA stalls, recompute bursts, and collective waits — and exports
// them in the Chrome trace-event JSON format (chrome://tracing, Perfetto),
// so a training iteration's overlap behaviour can be inspected visually.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/memcentric/mcdla/internal/units"
)

// Category classifies a span for summary accounting and trace coloring.
type Category string

// Span categories emitted by the simulator.
const (
	Compute   Category = "compute"
	Recompute Category = "recompute"
	Stall     Category = "stall"
	SyncWait  Category = "sync-wait"
	Offload   Category = "offload"
	Prefetch  Category = "prefetch"
	// InterSync marks scale-out collective stages crossing the system-node
	// uplinks (the inter-node lap of a hierarchical all-reduce), so plane
	// traces separate chassis-local from plane-wide synchronization.
	InterSync Category = "inter-sync"
)

// Span is one closed interval of simulated time attributed to an activity.
type Span struct {
	Name     string
	Category Category
	Start    units.Time
	End      units.Time
}

// Duration reports the span length.
func (s Span) Duration() units.Time { return s.End - s.Start }

// Log collects spans for one simulated iteration.
type Log struct {
	// Label names the run (design × workload).
	Label string
	Spans []Span
}

// Add records a span; zero-length spans are dropped.
func (l *Log) Add(name string, cat Category, start, end units.Time) {
	if l == nil || end <= start {
		return
	}
	l.Spans = append(l.Spans, Span{Name: name, Category: cat, Start: start, End: end})
}

// Summary totals span time per category.
func (l *Log) Summary() map[Category]units.Time {
	out := make(map[Category]units.Time)
	for _, s := range l.Spans {
		out[s.Category] += s.Duration()
	}
	return out
}

// Validate checks structural invariants: nonnegative spans in chronological
// start order within each category track.
func (l *Log) Validate() error {
	for i, s := range l.Spans {
		if s.End < s.Start {
			return fmt.Errorf("trace: span %d (%s) ends before it starts", i, s.Name)
		}
		if s.Start < 0 {
			return fmt.Errorf("trace: span %d (%s) starts before time zero", i, s.Name)
		}
	}
	return nil
}

// chromeEvent is one Chrome trace-event ("X" = complete event). Times are
// microseconds per the format.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// track assigns each category a Chrome thread lane so compute, DMA and
// collective activity render as parallel rows.
func track(cat Category) int {
	switch cat {
	case Compute, Recompute:
		return 0
	case Stall, SyncWait:
		return 1
	case Offload:
		return 2
	case Prefetch:
		return 3
	case InterSync:
		return 4
	case Queue, Service:
		// Fleet lifecycle categories: fleet timelines lay these out on
		// explicit per-pod lanes, so the category track is only a fallback
		// for logs that mix them in.
		return 5
	}
	return 5
}

// WriteChrome serializes the log in Chrome trace-event JSON.
func (l *Log) WriteChrome(w io.Writer) error {
	events := make([]chromeEvent, 0, len(l.Spans))
	for _, s := range l.Spans {
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  string(s.Category),
			Ph:   "X",
			Ts:   s.Start.Microseconds(),
			Dur:  s.Duration().Microseconds(),
			Pid:  1,
			Tid:  track(s.Category),
		})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		DisplayUnit string        `json:"displayTimeUnit"`
		Label       string        `json:"label,omitempty"`
	}{TraceEvents: events, DisplayUnit: "ms", Label: l.Label}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// CriticalPathShare reports the fraction of the iteration (first start to
// last end) covered by compute-track spans — a quick overlap-quality figure.
func (l *Log) CriticalPathShare() float64 {
	if len(l.Spans) == 0 {
		return 0
	}
	first, last := l.Spans[0].Start, l.Spans[0].End
	var busy units.Time
	for _, s := range l.Spans {
		if s.Start < first {
			first = s.Start
		}
		if s.End > last {
			last = s.End
		}
		if s.Category == Compute || s.Category == Recompute {
			busy += s.Duration()
		}
	}
	total := last - first
	if total <= 0 {
		return 0
	}
	return busy.Seconds() / total.Seconds()
}
