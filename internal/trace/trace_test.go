package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/memcentric/mcdla/internal/units"
)

func sampleLog() *Log {
	l := &Log{Label: "test"}
	l.Add("conv1/fwd", Compute, 0, units.Milliseconds(2))
	l.Add("conv1/offload", Offload, units.Milliseconds(2), units.Milliseconds(5))
	l.Add("conv2/fwd", Compute, units.Milliseconds(2), units.Milliseconds(4))
	l.Add("conv2/stall", Stall, units.Milliseconds(4), units.Milliseconds(6))
	l.Add("tail/dW", SyncWait, units.Milliseconds(6), units.Milliseconds(7))
	return l
}

func TestAddDropsEmptySpans(t *testing.T) {
	l := &Log{}
	l.Add("noop", Compute, 5, 5)
	l.Add("backwards", Compute, 5, 4)
	if len(l.Spans) != 0 {
		t.Fatalf("degenerate spans recorded: %d", len(l.Spans))
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add("x", Compute, 0, 1) // must not panic
}

func TestSummary(t *testing.T) {
	s := sampleLog().Summary()
	if got := s[Compute].Milliseconds(); got != 4 {
		t.Fatalf("compute total = %g ms, want 4", got)
	}
	if got := s[Stall].Milliseconds(); got != 2 {
		t.Fatalf("stall total = %g ms, want 2", got)
	}
	if got := s[SyncWait].Milliseconds(); got != 1 {
		t.Fatalf("sync total = %g ms, want 1", got)
	}
}

func TestValidate(t *testing.T) {
	if err := sampleLog().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Log{Spans: []Span{{Name: "x", Start: -1, End: 1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected negative-start error")
	}
	bad = &Log{Spans: []Span{{Name: "x", Start: 2, End: 1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected inverted-span error")
	}
}

func TestWriteChromeFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleLog().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayUnit string `json:"displayTimeUnit"`
		Label       string `json:"label"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("event count = %d", len(doc.TraceEvents))
	}
	if doc.Label != "test" || doc.DisplayUnit != "ms" {
		t.Fatalf("metadata = %q %q", doc.Label, doc.DisplayUnit)
	}
	// Events must be time-sorted complete events with lane assignments.
	prev := -1.0
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Fatalf("event phase = %q", e.Ph)
		}
		if e.Ts < prev {
			t.Fatal("events not sorted by start time")
		}
		prev = e.Ts
		if e.Dur <= 0 {
			t.Fatalf("event %s has duration %g", e.Name, e.Dur)
		}
	}
	// Compute and DMA lanes must differ so the trace renders as overlap.
	lanes := map[string]int{}
	for _, e := range doc.TraceEvents {
		lanes[e.Cat] = e.Tid
	}
	if lanes["compute"] == lanes["offload"] {
		t.Fatal("compute and offload share a lane")
	}
}

func TestCriticalPathShare(t *testing.T) {
	// 4 ms of compute over a 7 ms window.
	got := sampleLog().CriticalPathShare()
	want := 4.0 / 7.0
	if got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("critical-path share = %g, want %g", got, want)
	}
	if (&Log{}).CriticalPathShare() != 0 {
		t.Fatal("empty log share must be 0")
	}
}
