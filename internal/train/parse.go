package train

import (
	"fmt"
	"strings"
)

// ParseStrategy resolves the user-facing strategy spellings shared by the
// CLI's -strategy flag and the HTTP API's strategy parameter, so the two
// surfaces accept exactly the same inputs.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(s) {
	case "dp", "data", "data-parallel":
		return DataParallel, nil
	case "mp", "model", "model-parallel":
		return ModelParallel, nil
	}
	return 0, fmt.Errorf("unknown strategy %q (want dp or mp)", s)
}

// ParsePrecisionList parses a comma-separated precision list, shared by the
// CLI's -precisions flag and the HTTP API's precisions parameter.
func ParsePrecisionList(csv string) ([]Precision, error) {
	var out []Precision
	for _, part := range strings.Split(csv, ",") {
		p, err := ParsePrecision(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
