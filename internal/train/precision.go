package train

import (
	"fmt"
	"strings"
)

// Precision selects the training number-format policy. The dnn package
// stores tensors at a 2-byte base element (the fp16 storage of the Table II
// tensor-core-class device), so precision acts as a byte-scale on top of the
// graph: activations, weight reads and collective payloads widen under FP32,
// and the mixed policy keeps fp16 activations while widening the dW
// all-reduce to the fp32 master-weight gradients it accumulates into.
//
// The zero value is FP16 — the seed simulator's historical accounting — so
// every existing call site and cache key is unchanged by default.
type Precision int

const (
	// FP16 is pure half precision: 2-byte activations, weights, gradients
	// and collective payloads (the seed model's accounting).
	FP16 Precision = iota
	// Mixed is fp16 compute with fp32 master weights: activations, weight
	// reads and feature-map collectives stay at 2 bytes, but the dW
	// all-reduce carries the 4-byte gradients the fp32 master copy
	// accumulates — the payload-widening cost of loss-scaled training.
	Mixed
	// FP32 is full single precision: every tensor and payload doubles
	// against the 2-byte base.
	FP32
)

func (p Precision) String() string {
	switch p {
	case FP16:
		return "fp16"
	case Mixed:
		return "mixed"
	case FP32:
		return "fp32"
	}
	return fmt.Sprintf("Precision(%d)", int(p))
}

// ParsePrecision resolves a CLI spelling.
func ParsePrecision(s string) (Precision, error) {
	switch strings.ToLower(s) {
	case "fp16", "half":
		return FP16, nil
	case "mixed", "amp":
		return Mixed, nil
	case "fp32", "single", "float":
		return FP32, nil
	}
	return 0, fmt.Errorf("train: unknown precision %q (want fp16, mixed or fp32)", s)
}

// Precisions returns the sweep axis in narrow-to-wide order.
func Precisions() []Precision { return []Precision{FP16, Mixed, FP32} }

// ActScale is the multiplier on activation, weight-read and feature-map
// bytes over the 2-byte graph base.
func (p Precision) ActScale() int64 {
	if p == FP32 {
		return 2
	}
	return 1
}

// DWScale is the multiplier on dW all-reduce payload bytes: widened whenever
// the gradient accumulation runs in fp32 (Mixed and FP32).
func (p Precision) DWScale() int64 {
	if p == FP16 {
		return 1
	}
	return 2
}

// MasterScale is the multiplier on the resident parameter footprint: Mixed
// and FP32 keep 4-byte master weights (Mixed additionally keeps the fp16
// compute copy, which the capacity accounting rolls into the same term).
func (p Precision) MasterScale() int64 {
	if p == FP16 {
		return 1
	}
	return 2
}
