// Package train turns a network into the per-device iteration schedule of a
// parallel training strategy (§II-C, Figure 3): data-parallel training
// splits the batch across workers and all-reduces weight gradients (dW)
// during backprop; model-parallel training (the Krizhevsky-style strategy of
// §IV) splits each GEMM layer's outputs across workers, all-gathers feature
// maps (X) at every layer boundary during forward propagation, and
// all-reduces input gradients (dX) during backprop.
package train

import (
	"fmt"
	"sync"

	"github.com/memcentric/mcdla/internal/collective"
	"github.com/memcentric/mcdla/internal/dnn"
	"github.com/memcentric/mcdla/internal/units"
	"github.com/memcentric/mcdla/internal/vmem"
)

// Strategy selects the parallelization scheme.
type Strategy int

const (
	// DataParallel assigns each worker the full model and 1/workers of the
	// batch.
	DataParallel Strategy = iota
	// ModelParallel assigns each worker the full batch and 1/workers of
	// every GEMM layer's outputs.
	ModelParallel
)

func (s Strategy) String() string {
	switch s {
	case DataParallel:
		return "data-parallel"
	case ModelParallel:
		return "model-parallel"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// SyncOp is one collective a device participates in during the iteration.
type SyncOp struct {
	Op    collective.Op
	Bytes units.Bytes
	// Tag labels the traffic for accounting ("dW", "X", "dX").
	Tag string
	// Blocking collectives stall the compute pipeline (model-parallel layer
	// boundaries); non-blocking ones overlap with remaining backprop
	// (data-parallel dW reductions).
	Blocking bool
}

// LayerWork is the per-device execution record for one layer.
type LayerWork struct {
	LayerID int
	// GEMMs are the device's shard of the layer's forward matrix work.
	GEMMs []dnn.GEMM
	// WeightBytes is the device's shard of parameters read per execution.
	WeightBytes int64
	// InputBytes / OutputBytes are the HBM-visible tensor footprints for
	// the roofline (full tensors under model parallel: inputs arrive
	// gathered, outputs are gathered before the next major layer).
	InputBytes  int64
	OutputBytes int64
	// FwdSync runs after this layer's forward pass (all-gather of Y).
	FwdSync []SyncOp
	// BwdSync runs with this layer's backward pass (all-reduce of dX or
	// the layer's dW share).
	BwdSync []SyncOp
}

// Schedule is a device's full iteration plan.
type Schedule struct {
	Name     string
	Strategy Strategy
	Workers  int
	// GlobalBatch is the problem-size batch (512 in the paper's runs).
	GlobalBatch int
	// Precision is the number-format policy the byte accounting was scaled
	// with.
	Precision Precision
	// Graph is the per-device graph: batch/workers under data parallel,
	// the full batch under model parallel.
	Graph *dnn.Graph
	// Work is indexed by layer ID.
	Work []LayerWork

	// prepMu guards the lazily-built vmem analyses below. Schedules are
	// shared by pointer across concurrent simulations (the runner memoizes
	// them per workload), so the cache must be concurrency-safe. The mutex
	// also makes Schedule non-copyable under go vet's copylocks check, which
	// is intended — every consumer already holds a *Schedule.
	prepMu sync.Mutex
	prep   [2]*vmem.Prepared
}

// Prepared returns the vmem memory-overlaying analysis of the schedule's
// graph for the given oracle mode, built once per schedule and shared across
// simulations: design points that differ only on bandwidth axes (links,
// memory nodes, DIMMs) reuse the same plan and prefetch schedule instead of
// re-running the DAG analysis per evaluation.
func (s *Schedule) Prepared(oracle bool) (*vmem.Prepared, error) {
	idx := 0
	if oracle {
		idx = 1
	}
	s.prepMu.Lock()
	defer s.prepMu.Unlock()
	if s.prep[idx] == nil {
		pr, err := vmem.Prepare(s.Graph, vmem.Options{Oracle: oracle})
		if err != nil {
			return nil, err
		}
		s.prep[idx] = pr
	}
	return s.prep[idx], nil
}

// Build constructs the per-device schedule for a benchmark at its default
// sequence length in the seed's fp16 accounting. Workers must divide the
// global batch under data parallel and every layer's output features under
// model parallel (true for all Table III networks at 8).
func Build(name string, globalBatch, workers int, strategy Strategy) (*Schedule, error) {
	return BuildSeq(name, globalBatch, workers, strategy, 0, FP16)
}

// BuildSeq is Build with the full scenario axis: a sequence-length override
// (0 keeps the workload default) and a training precision.
func BuildSeq(name string, globalBatch, workers int, strategy Strategy, seqlen int, prec Precision) (*Schedule, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("train: workers must be positive, got %d", workers)
	}
	if globalBatch <= 0 {
		return nil, fmt.Errorf("train: batch must be positive, got %d", globalBatch)
	}
	deviceBatch := globalBatch
	if strategy == DataParallel {
		if globalBatch%workers != 0 {
			return nil, fmt.Errorf("train: batch %d not divisible by %d workers", globalBatch, workers)
		}
		deviceBatch = globalBatch / workers
	}
	g, err := dnn.BuildSeq(name, deviceBatch, seqlen)
	if err != nil {
		return nil, err
	}
	return BuildGraph(g, globalBatch, workers, strategy, prec)
}

// BuildGraph constructs the per-device schedule for an already-built graph:
// under data parallel g is the per-device graph (batch = globalBatch /
// workers), under model parallel the full-batch graph. It is the entry point
// for custom (non-registry) workloads — randomized property-test graphs,
// hand-built capacity studies.
func BuildGraph(g *dnn.Graph, globalBatch, workers int, strategy Strategy, prec Precision) (*Schedule, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("train: workers must be positive, got %d", workers)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	switch strategy {
	case DataParallel:
		if g.Batch*workers != globalBatch {
			return nil, fmt.Errorf("train: device batch %d × %d workers != global batch %d", g.Batch, workers, globalBatch)
		}
		return buildDataParallel(g, globalBatch, workers, prec), nil
	case ModelParallel:
		if g.Batch != globalBatch {
			return nil, fmt.Errorf("train: model-parallel graph batch %d != global batch %d", g.Batch, globalBatch)
		}
		return buildModelParallel(g, globalBatch, workers, prec)
	default:
		return nil, fmt.Errorf("train: unknown strategy %v", strategy)
	}
}

// MustBuild is Build for configuration-time call sites.
func MustBuild(name string, globalBatch, workers int, strategy Strategy) *Schedule {
	s, err := Build(name, globalBatch, workers, strategy)
	if err != nil {
		panic(err)
	}
	return s
}

func inputBytes(g *dnn.Graph, l *dnn.Layer) int64 {
	var total int64
	for _, in := range l.Inputs {
		total += g.Layer(in).OutBytes()
	}
	return total
}

// buildDataParallel: full model per device; the only synchronization is the
// all-reduce of each weight group's gradients, issued when backprop finishes
// the group's earliest layer (gradients for shared recurrent weights
// accumulate across timesteps and reduce once). Precision scales the byte
// accounting: activation/weight reads by ActScale, the dW payload by DWScale
// (fp32 master-weight gradients under mixed precision).
func buildDataParallel(g *dnn.Graph, globalBatch, workers int, prec Precision) *Schedule {
	s := &Schedule{
		Name:        g.Name,
		Strategy:    DataParallel,
		Workers:     workers,
		GlobalBatch: globalBatch,
		Precision:   prec,
		Graph:       g,
		Work:        make([]LayerWork, len(g.Layers)),
	}
	act, dw := prec.ActScale(), prec.DWScale()
	// Earliest layer of each weight group = last processed during backprop.
	groupIssue := make(map[string]int)
	groupBytes := make(map[string]int64)
	for _, l := range g.Layers {
		if l.WeightGroup == "" {
			continue
		}
		if _, seen := groupIssue[l.WeightGroup]; !seen {
			groupIssue[l.WeightGroup] = l.ID
			groupBytes[l.WeightGroup] = l.WeightBytes()
		}
	}
	for _, l := range g.Layers {
		w := LayerWork{
			LayerID:     l.ID,
			GEMMs:       append([]dnn.GEMM(nil), l.GEMMs...),
			WeightBytes: act * l.WeightBytes(),
			InputBytes:  act * inputBytes(g, l),
			OutputBytes: act * l.OutBytes(),
		}
		if workers > 1 && l.WeightGroup != "" && groupIssue[l.WeightGroup] == l.ID {
			w.BwdSync = append(w.BwdSync, SyncOp{
				Op:    collective.AllReduce,
				Bytes: units.Bytes(dw * groupBytes[l.WeightGroup]),
				Tag:   "dW",
				// Data-parallel dW reductions overlap with the rest of
				// backprop (Figure 3(a): synchronization only at gradient
				// accumulation).
				Blocking: false,
			})
		}
		s.Work[l.ID] = w
	}
	return s
}

// buildModelParallel: every GEMM layer's output features are sliced across
// workers; feature maps are all-gathered at layer boundaries in forward and
// input gradients all-reduced in backward (Figure 3(b)). Elementwise layers
// run replicated on the gathered tensors. Precision scales every term by
// ActScale — the X/dX collectives carry activations and activation
// gradients, which stay fp16 under the mixed policy.
func buildModelParallel(g *dnn.Graph, globalBatch, workers int, prec Precision) (*Schedule, error) {
	s := &Schedule{
		Name:        g.Name,
		Strategy:    ModelParallel,
		Workers:     workers,
		GlobalBatch: globalBatch,
		Precision:   prec,
		Graph:       g,
		Work:        make([]LayerWork, len(g.Layers)),
	}
	act := prec.ActScale()
	consumers := g.Consumers()
	for _, l := range g.Layers {
		w := LayerWork{
			LayerID:     l.ID,
			InputBytes:  act * inputBytes(g, l),
			OutputBytes: act * l.OutBytes(),
		}
		if len(l.GEMMs) > 0 {
			div := int64(workers)
			for _, gm := range l.GEMMs {
				if gm.N%div != 0 {
					return nil, fmt.Errorf("train: %s layer %s: output dim %d not divisible by %d workers",
						g.Name, l.Name, gm.N, workers)
				}
				w.GEMMs = append(w.GEMMs, dnn.GEMM{M: gm.M, N: gm.N / div, K: gm.K})
			}
			w.WeightBytes = act * l.WeightBytes() / div
			// Forward: the device produced 1/workers of Y; gather the full
			// tensor before downstream layers consume it. The final layer
			// of the graph needs no gather.
			if len(consumers[l.ID]) > 0 {
				w.FwdSync = append(w.FwdSync, SyncOp{
					Op:       collective.AllGather,
					Bytes:    units.Bytes(act * l.OutBytes()),
					Tag:      "X",
					Blocking: true,
				})
			}
			// Backward: each device's weight slice contributes a partial
			// dX over the full input; sum them.
			w.BwdSync = append(w.BwdSync, SyncOp{
				Op:       collective.AllReduce,
				Bytes:    units.Bytes(w.InputBytes),
				Tag:      "dX",
				Blocking: true,
			})
		} else {
			w.GEMMs = nil
			w.WeightBytes = act * l.WeightBytes()
		}
		s.Work[l.ID] = w
	}
	return s, nil
}

// DeviceBatch reports the per-device batch size.
func (s *Schedule) DeviceBatch() int { return s.Graph.Batch }

// SyncBytes totals the collective payload bytes of the iteration, by tag.
func (s *Schedule) SyncBytes() map[string]int64 {
	out := make(map[string]int64)
	for _, w := range s.Work {
		for _, op := range append(append([]SyncOp(nil), w.FwdSync...), w.BwdSync...) {
			out[op.Tag] += int64(op.Bytes)
		}
	}
	return out
}

// ComputeMACs totals the device's forward MAC count for the iteration.
func (s *Schedule) ComputeMACs() int64 {
	var total int64
	for _, w := range s.Work {
		for _, g := range w.GEMMs {
			total += g.MACs()
		}
	}
	return total
}

// Validate checks schedule invariants.
func (s *Schedule) Validate() error {
	if len(s.Work) != len(s.Graph.Layers) {
		return fmt.Errorf("train: %s: work entries %d != layers %d", s.Name, len(s.Work), len(s.Graph.Layers))
	}
	for i, w := range s.Work {
		if w.LayerID != i {
			return fmt.Errorf("train: %s: work %d has layer ID %d", s.Name, i, w.LayerID)
		}
		for _, op := range append(append([]SyncOp(nil), w.FwdSync...), w.BwdSync...) {
			if op.Bytes < 0 {
				return fmt.Errorf("train: %s: layer %d has negative sync bytes", s.Name, i)
			}
		}
	}
	return nil
}
