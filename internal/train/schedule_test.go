package train

import (
	"testing"

	"github.com/memcentric/mcdla/internal/collective"
	"github.com/memcentric/mcdla/internal/dnn"
)

const (
	paperBatch   = 512
	paperWorkers = 8
)

func TestBuildAllBenchmarksBothStrategies(t *testing.T) {
	for _, name := range dnn.BenchmarkNames() {
		for _, strat := range []Strategy{DataParallel, ModelParallel} {
			s, err := Build(name, paperBatch, paperWorkers, strat)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, strat, err)
			}
			if err := s.Validate(); err != nil {
				t.Errorf("%s/%v: %v", name, strat, err)
			}
		}
	}
}

func TestDataParallelBatchSplit(t *testing.T) {
	s := MustBuild("AlexNet", paperBatch, paperWorkers, DataParallel)
	if s.DeviceBatch() != 64 {
		t.Fatalf("device batch = %d, want 64", s.DeviceBatch())
	}
}

func TestModelParallelKeepsFullBatch(t *testing.T) {
	s := MustBuild("AlexNet", paperBatch, paperWorkers, ModelParallel)
	if s.DeviceBatch() != paperBatch {
		t.Fatalf("device batch = %d, want %d", s.DeviceBatch(), paperBatch)
	}
}

func TestPerDeviceComputeEqualAcrossStrategies(t *testing.T) {
	// 1/8 of the batch with the full model (DP) equals the full batch with
	// 1/8 of the model (MP) in MAC count.
	for _, name := range dnn.BenchmarkNames() {
		dp := MustBuild(name, paperBatch, paperWorkers, DataParallel)
		mp := MustBuild(name, paperBatch, paperWorkers, ModelParallel)
		if dp.ComputeMACs() != mp.ComputeMACs() {
			t.Errorf("%s: DP MACs %d != MP MACs %d", name, dp.ComputeMACs(), mp.ComputeMACs())
		}
	}
}

func TestDataParallelSyncIsWeights(t *testing.T) {
	// DP synchronization is exactly the model's unique parameter bytes
	// (dW all-reduce per weight group).
	for _, name := range dnn.BenchmarkNames() {
		s := MustBuild(name, paperBatch, paperWorkers, DataParallel)
		sync := s.SyncBytes()
		if got, want := sync["dW"], s.Graph.TotalWeightBytes(); got != want {
			t.Errorf("%s: dW sync %d != weight bytes %d", name, got, want)
		}
		if sync["X"] != 0 || sync["dX"] != 0 {
			t.Errorf("%s: DP must not gather feature maps", name)
		}
	}
}

func TestDataParallelSyncsNonBlocking(t *testing.T) {
	s := MustBuild("VGG-E", paperBatch, paperWorkers, DataParallel)
	for _, w := range s.Work {
		for _, op := range w.BwdSync {
			if op.Blocking {
				t.Fatal("DP dW all-reduce must be non-blocking (overlapped)")
			}
			if op.Op != collective.AllReduce {
				t.Fatalf("DP sync op = %v, want all-reduce", op.Op)
			}
		}
		if len(w.FwdSync) != 0 {
			t.Fatal("DP must have no forward syncs")
		}
	}
}

func TestRecurrentWeightsReduceOnce(t *testing.T) {
	// RNN weight groups are shared across timesteps: exactly one dW
	// all-reduce per iteration, issued at the earliest cell.
	s := MustBuild("RNN-GRU", paperBatch, paperWorkers, DataParallel)
	count := 0
	firstCell := -1
	for _, l := range s.Graph.Layers {
		if l.Kind == dnn.GRUCell && firstCell < 0 {
			firstCell = l.ID
		}
	}
	for _, w := range s.Work {
		if len(w.BwdSync) > 0 {
			count += len(w.BwdSync)
			if w.LayerID != firstCell {
				t.Fatalf("dW reduce at layer %d, want first cell %d", w.LayerID, firstCell)
			}
		}
	}
	if count != 1 {
		t.Fatalf("dW reduce count = %d, want 1", count)
	}
}

func TestModelParallelSyncStructure(t *testing.T) {
	s := MustBuild("VGG-E", paperBatch, paperWorkers, ModelParallel)
	for _, w := range s.Work {
		l := s.Graph.Layer(w.LayerID)
		if len(l.GEMMs) > 0 {
			// Major layers gather X forward (except terminal) and reduce
			// dX backward, both blocking.
			if len(w.BwdSync) != 1 || w.BwdSync[0].Op != collective.AllReduce || !w.BwdSync[0].Blocking {
				t.Fatalf("layer %s: bad backward sync %+v", l.Name, w.BwdSync)
			}
			if w.BwdSync[0].Tag != "dX" {
				t.Fatalf("layer %s: backward sync tag %q", l.Name, w.BwdSync[0].Tag)
			}
		} else if len(w.FwdSync) != 0 || len(w.BwdSync) != 0 {
			t.Fatalf("elementwise layer %s has syncs", l.Name)
		}
	}
	sync := s.SyncBytes()
	if sync["X"] == 0 || sync["dX"] == 0 {
		t.Fatal("MP must move X and dX")
	}
	if sync["dW"] != 0 {
		t.Fatal("MP must not reduce dW (weight slices are disjoint)")
	}
}

func TestModelParallelShardsGEMMs(t *testing.T) {
	dp := MustBuild("AlexNet", paperBatch, paperWorkers, DataParallel)
	mp := MustBuild("AlexNet", paperBatch, paperWorkers, ModelParallel)
	for i, w := range mp.Work {
		l := mp.Graph.Layer(i)
		if len(l.GEMMs) == 0 {
			continue
		}
		if w.GEMMs[0].N*int64(paperWorkers) != l.GEMMs[0].N {
			t.Fatalf("layer %s: sharded N=%d vs full N=%d", l.Name, w.GEMMs[0].N, l.GEMMs[0].N)
		}
		if w.WeightBytes*int64(paperWorkers) != l.WeightBytes() {
			t.Fatalf("layer %s: weight shard %d vs full %d", l.Name, w.WeightBytes, l.WeightBytes())
		}
	}
	_ = dp
}

func TestModelParallelSyncHeavierThanDataParallel(t *testing.T) {
	// The paper's central workload observation (§II-C, §V-A): model-parallel
	// training synchronizes far more data than data-parallel training for
	// CNNs (feature maps vs weights).
	for _, name := range dnn.CNNNames() {
		dp := MustBuild(name, paperBatch, paperWorkers, DataParallel)
		mp := MustBuild(name, paperBatch, paperWorkers, ModelParallel)
		var dpTotal, mpTotal int64
		for _, b := range dp.SyncBytes() {
			dpTotal += b
		}
		for _, b := range mp.SyncBytes() {
			mpTotal += b
		}
		if mpTotal <= dpTotal {
			t.Errorf("%s: MP sync %d not heavier than DP sync %d", name, mpTotal, dpTotal)
		}
	}
}

func TestTerminalLayerSkipsGather(t *testing.T) {
	s := MustBuild("AlexNet", paperBatch, paperWorkers, ModelParallel)
	// The softmax consumes fc8; fc8 has consumers so it gathers, but the
	// softmax itself (no GEMM) must not. Verify no FwdSync on any layer
	// without consumers.
	cons := s.Graph.Consumers()
	for _, w := range s.Work {
		if len(cons[w.LayerID]) == 0 && len(w.FwdSync) > 0 {
			t.Fatalf("terminal layer %d has forward sync", w.LayerID)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build("AlexNet", 0, 8, DataParallel); err == nil {
		t.Error("expected error for zero batch")
	}
	if _, err := Build("AlexNet", 512, 0, DataParallel); err == nil {
		t.Error("expected error for zero workers")
	}
	if _, err := Build("AlexNet", 10, 8, DataParallel); err == nil {
		t.Error("expected error for indivisible batch")
	}
	if _, err := Build("NoSuchNet", 512, 8, DataParallel); err == nil {
		t.Error("expected error for unknown benchmark")
	}
	if _, err := Build("AlexNet", 512, 8, Strategy(9)); err == nil {
		t.Error("expected error for unknown strategy")
	}
	// AlexNet fc8 has 1000 outputs: not divisible by 7 workers.
	if _, err := Build("AlexNet", 512, 7, ModelParallel); err == nil {
		t.Error("expected error for indivisible model split")
	}
}

func TestStrategyStrings(t *testing.T) {
	if DataParallel.String() != "data-parallel" || ModelParallel.String() != "model-parallel" {
		t.Fatal("strategy strings wrong")
	}
	if Strategy(7).String() != "Strategy(7)" {
		t.Fatal("unknown strategy string wrong")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustBuild("NoSuchNet", 512, 8, DataParallel)
}
