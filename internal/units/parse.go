package units

import (
	"fmt"
	"strconv"
	"strings"
)

// ParsePositiveInts parses a comma-separated list of positive integers,
// rejecting trailing garbage ("512x1024") and nonpositive values outright.
// name labels the list in errors — the CLI passes its flag ("-nodes"), the
// HTTP API its query parameter ("nodes") — so both surfaces name the
// offending input the same way.
func ParsePositiveInts(name, csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid %s list %q: element %q is not a positive integer", name, csv, part)
		}
		out = append(out, n)
	}
	return out, nil
}

// ParsePositiveFloats is ParsePositiveInts for positive real quantities
// (per-link GB/s in the explore sweep).
func ParsePositiveFloats(name, csv string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(csv, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("invalid %s list %q: element %q is not a positive number", name, csv, part)
		}
		out = append(out, f)
	}
	return out, nil
}
