// Package units provides the value types shared by every mcdla subsystem:
// byte counts, bandwidths, and simulated time. Keeping them as distinct
// named types catches unit-mixing bugs at compile time (a Bandwidth cannot
// be added to a Time) while remaining plain float64/int64 underneath so the
// simulator stays allocation-free on its hot paths.
package units

import (
	"fmt"
	"math"
)

// Bytes is a data size in bytes. Sizes in the simulator are always whole
// bytes, but transfers are fractional when striped across links, so the
// bandwidth math below converts to float64.
type Bytes int64

// Common byte-size multiples.
const (
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
	TB Bytes = 1 << 40
)

// KiB and friends are aliases that make call sites such as 4*units.KiB read
// like the paper's own prose.
const (
	KiB = KB
	MiB = MB
	GiB = GB
	TiB = TB
)

func (b Bytes) String() string {
	switch {
	case b >= TB:
		return fmt.Sprintf("%.2f TB", float64(b)/float64(TB))
	case b >= GB:
		return fmt.Sprintf("%.2f GB", float64(b)/float64(GB))
	case b >= MB:
		return fmt.Sprintf("%.2f MB", float64(b)/float64(MB))
	case b >= KB:
		return fmt.Sprintf("%.2f KB", float64(b)/float64(KB))
	default:
		return fmt.Sprintf("%d B", int64(b))
	}
}

// Bandwidth is a transfer rate in bytes per second.
type Bandwidth float64

// GBps returns a Bandwidth of g gigabytes per second, using the decimal
// (vendor datasheet) convention the paper uses: 1 GB/s = 1e9 B/s.
func GBps(g float64) Bandwidth { return Bandwidth(g * 1e9) }

// GBps reports the bandwidth in decimal GB/s.
func (bw Bandwidth) GBps() float64 { return float64(bw) / 1e9 }

func (bw Bandwidth) String() string { return fmt.Sprintf("%.1f GB/s", bw.GBps()) }

// Time is a point or span of simulated time in seconds.
type Time float64

// Time construction helpers.
func Seconds(s float64) Time       { return Time(s) }
func Milliseconds(ms float64) Time { return Time(ms * 1e-3) }
func Microseconds(us float64) Time { return Time(us * 1e-6) }
func Nanoseconds(ns float64) Time  { return Time(ns * 1e-9) }

// Seconds reports t as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Milliseconds reports t in milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) * 1e3 }

// Microseconds reports t in microseconds.
func (t Time) Microseconds() float64 { return float64(t) * 1e6 }

func (t Time) String() string {
	abs := math.Abs(float64(t))
	switch {
	case abs >= 1:
		return fmt.Sprintf("%.3f s", float64(t))
	case abs >= 1e-3:
		return fmt.Sprintf("%.3f ms", float64(t)*1e3)
	case abs >= 1e-6:
		return fmt.Sprintf("%.3f us", float64(t)*1e6)
	case t == 0:
		return "0 s"
	default:
		return fmt.Sprintf("%.1f ns", float64(t)*1e9)
	}
}

// TransferTime reports how long moving b bytes over bw takes. A zero or
// negative bandwidth yields +Inf, which the simulator treats as "link absent";
// that surfaces configuration errors as unmistakably broken timelines rather
// than silently-fast ones.
func TransferTime(b Bytes, bw Bandwidth) Time {
	if bw <= 0 {
		return Time(math.Inf(1))
	}
	return Time(float64(b) / float64(bw))
}

// MaxTime returns the later of two times.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinTime returns the earlier of two times.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
