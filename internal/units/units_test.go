package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestByteMultiples(t *testing.T) {
	if KB != 1024 || MB != 1024*KB || GB != 1024*MB || TB != 1024*GB {
		t.Fatal("binary multiples wrong")
	}
	if KiB != KB || MiB != MB || GiB != GB || TiB != TB {
		t.Fatal("aliases wrong")
	}
}

func TestBytesString(t *testing.T) {
	cases := map[Bytes]string{
		512:               "512 B",
		2 * KB:            "2.00 KB",
		3 * MB:            "3.00 MB",
		GB + GB/2:         "1.50 GB",
		2 * TB:            "2.00 TB",
		Bytes(1):          "1 B",
		Bytes(1023):       "1023 B",
		Bytes(1024 + 512): "1.50 KB",
	}
	for b, want := range cases {
		if got := b.String(); got != want {
			t.Errorf("%d bytes = %q, want %q", int64(b), got, want)
		}
	}
}

func TestBandwidthConversions(t *testing.T) {
	bw := GBps(25)
	if bw != 25e9 {
		t.Fatalf("GBps(25) = %v B/s", float64(bw))
	}
	if bw.GBps() != 25 {
		t.Fatalf("round trip = %g", bw.GBps())
	}
	if bw.String() != "25.0 GB/s" {
		t.Fatalf("string = %q", bw.String())
	}
}

func TestTimeConstructors(t *testing.T) {
	if Seconds(1) != 1 || Milliseconds(1000) != 1 || Microseconds(1e6) != 1 || Nanoseconds(1e9) != 1 {
		t.Fatal("time constructors disagree")
	}
	if Seconds(2).Milliseconds() != 2000 {
		t.Fatal("milliseconds accessor wrong")
	}
	if Seconds(2).Microseconds() != 2e6 {
		t.Fatal("microseconds accessor wrong")
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		Seconds(1.5):        "1.500 s",
		Milliseconds(2.25):  "2.250 ms",
		Microseconds(3.5):   "3.500 us",
		Nanoseconds(120):    "120.0 ns",
		0:                   "0 s",
		Seconds(-1.5):       "-1.500 s",
		Milliseconds(-2.25): "-2.250 ms",
	}
	for tt, want := range cases {
		if got := tt.String(); got != want {
			t.Errorf("%g s = %q, want %q", float64(tt), got, want)
		}
	}
}

func TestTransferTime(t *testing.T) {
	got := TransferTime(Bytes(32e9), GBps(16))
	if math.Abs(got.Seconds()-2) > 1e-12 {
		t.Fatalf("32 GB over 16 GB/s = %v, want 2 s", got)
	}
	if !math.IsInf(TransferTime(GB, 0).Seconds(), 1) {
		t.Fatal("zero bandwidth must yield +Inf (link absent)")
	}
	if !math.IsInf(TransferTime(GB, -1).Seconds(), 1) {
		t.Fatal("negative bandwidth must yield +Inf")
	}
	if TransferTime(0, GBps(1)) != 0 {
		t.Fatal("zero bytes must transfer instantly")
	}
}

func TestMinMaxTime(t *testing.T) {
	if MaxTime(1, 2) != 2 || MaxTime(2, 1) != 2 {
		t.Fatal("MaxTime wrong")
	}
	if MinTime(1, 2) != 1 || MinTime(2, 1) != 1 {
		t.Fatal("MinTime wrong")
	}
}

// Property: transfer time is additive over concatenated payloads and
// inversely proportional to bandwidth.
func TestPropertyTransferTimeLinear(t *testing.T) {
	f := func(aRaw, bRaw uint32, bwRaw uint16) bool {
		a, b := Bytes(aRaw), Bytes(bRaw)
		bw := GBps(float64(bwRaw%1000) + 1)
		sum := TransferTime(a, bw) + TransferTime(b, bw)
		joint := TransferTime(a+b, bw)
		if math.Abs(sum.Seconds()-joint.Seconds()) > 1e-12+1e-9*joint.Seconds() {
			return false
		}
		double := TransferTime(a, 2*bw)
		return math.Abs(2*double.Seconds()-TransferTime(a, bw).Seconds()) < 1e-12+1e-9*double.Seconds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: MaxTime/MinTime bracket their arguments.
func TestPropertyMinMaxBracket(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := MinTime(Time(a), Time(b)), MaxTime(Time(a), Time(b))
		return lo <= hi && (lo == Time(a) || lo == Time(b)) && (hi == Time(a) || hi == Time(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
