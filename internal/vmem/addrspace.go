package vmem

import (
	"fmt"

	"github.com/memcentric/mcdla/internal/units"
)

// AddressSpace models the single device memory address space the MC-DLA
// driver exposes (§III-B, Figure 10): devicelocal physical memory lives at
// the bottom; each half of the left and right memory-nodes is concatenated
// and mapped into the higher address range. The enlarged device looks like
// an ordinary PCIe device with more memory, so existing system software
// (mmap) works as-is.
type AddressSpace struct {
	Local units.Bytes
	Left  units.Bytes // this device's half of the left memory-node
	Right units.Bytes // this device's half of the right memory-node
}

// Region identifies which physical region an address falls in.
type Region int

const (
	// RegionLocal is devicelocal (HBM) memory.
	RegionLocal Region = iota
	// RegionLeft is the left memory-node's half.
	RegionLeft
	// RegionRight is the right memory-node's half.
	RegionRight
)

func (r Region) String() string {
	switch r {
	case RegionLocal:
		return "devicelocal"
	case RegionLeft:
		return "deviceremote/left"
	case RegionRight:
		return "deviceremote/right"
	}
	return fmt.Sprintf("Region(%d)", int(r))
}

// Paper GPU addressing limits (§III-B): 49-bit virtual, 47-bit physical.
const (
	VirtualAddressBits  = 49
	PhysicalAddressBits = 47
)

// Total reports the full address-space size.
func (a AddressSpace) Total() units.Bytes { return a.Local + a.Left + a.Right }

// RemoteBase reports where deviceremote memory begins.
func (a AddressSpace) RemoteBase() units.Bytes { return a.Local }

// Resolve maps a physical device address to its backing region and offset.
func (a AddressSpace) Resolve(addr units.Bytes) (Region, units.Bytes, error) {
	switch {
	case addr < 0 || addr >= a.Total():
		return 0, 0, fmt.Errorf("vmem: address %d outside device memory of %d bytes", addr, a.Total())
	case addr < a.Local:
		return RegionLocal, addr, nil
	case addr < a.Local+a.Left:
		return RegionLeft, addr - a.Local, nil
	default:
		return RegionRight, addr - a.Local - a.Left, nil
	}
}

// Validate checks that the space fits the GPU's physical addressing limits.
func (a AddressSpace) Validate() error {
	if a.Local <= 0 {
		return fmt.Errorf("vmem: devicelocal size must be positive")
	}
	if a.Left < 0 || a.Right < 0 {
		return fmt.Errorf("vmem: remote halves must be nonnegative")
	}
	max := units.Bytes(1) << PhysicalAddressBits
	if a.Total() > max {
		return fmt.Errorf("vmem: address space %v exceeds %d-bit physical addressing", a.Total(), PhysicalAddressBits)
	}
	return nil
}
