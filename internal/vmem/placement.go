package vmem

import (
	"fmt"

	"github.com/memcentric/mcdla/internal/units"
)

// Placement selects the page allocation/placement policy for deviceremote
// memory (§III-B, Figure 10).
type Placement int

const (
	// Local places an entire allocation inside a single neighbouring
	// memory-node, reaching it over that side's N/2 links:
	// Latency_LOCAL = D / (N·B/2).
	Local Placement = iota
	// BWAware splits the allocation into two page-granular chunks mapped
	// round-robin across the left and right memory-nodes, so reads and
	// writes stripe over all N links concurrently:
	// Latency_BW_AWARE = (D/2) / (N·B/2), i.e. half of LOCAL.
	BWAware
)

func (p Placement) String() string {
	switch p {
	case Local:
		return "LOCAL"
	case BWAware:
		return "BW_AWARE"
	}
	return fmt.Sprintf("Placement(%d)", int(p))
}

// PageBytes is the placement granularity (GPU large pages).
const PageBytes = 64 * units.KB

// RemoteBandwidth reports the deviceremote DMA throughput a device-node
// achieves under the policy, given N links of B GB/s each.
func (p Placement) RemoteBandwidth(links int, linkBW units.Bandwidth) units.Bandwidth {
	half := units.Bandwidth(float64(linkBW) * float64(links) / 2)
	switch p {
	case Local:
		return half
	case BWAware:
		return 2 * half
	}
	panic(fmt.Sprintf("vmem: unknown placement %d", int(p)))
}

// TransferLatency reports the Figure 10 DMA latency for an allocation of
// size D under the policy.
func (p Placement) TransferLatency(d units.Bytes, links int, linkBW units.Bandwidth) units.Time {
	return units.TransferTime(d, p.RemoteBandwidth(links, linkBW))
}

// SplitAllocation returns the per-side chunk sizes (page aligned) for an
// allocation of size d: LOCAL puts everything on one side, BW_AWARE splits
// in two page-aligned halves.
func (p Placement) SplitAllocation(d units.Bytes) (left, right units.Bytes) {
	switch p {
	case Local:
		return d, 0
	case BWAware:
		pages := (d + PageBytes - 1) / PageBytes
		left = (pages / 2) * PageBytes
		if left > d {
			left = d
		}
		return left, d - left
	}
	panic(fmt.Sprintf("vmem: unknown placement %d", int(p)))
}
