// Package vmem implements the DNN memory-virtualization runtime the paper
// builds on (§II-B, §IV): the DL framework's compile-time DAG analysis
// derives each tensor's reuse distance, and a runtime memory manager
// schedules software-managed memory-overlaying operations — DMA offloads of
// feature maps to the backing store after their last forward use, and
// prefetches back ahead of their backward use — overlapped with computation.
// Layers with short compute (activations, pooling, ...) are recomputed
// during backprop instead of migrated, the MXNet-style exception the paper
// adopts for a conservative evaluation (§IV footnote 4).
//
// The backing store is design-point specific: host memory over PCIe
// (DC-DLA), host memory over CPU-side links (HC-DLA), or deviceremote
// memory inside the memory-nodes (MC-DLA); vmem only decides what moves and
// when, not over which channel.
package vmem

import (
	"fmt"
	"sort"

	"github.com/memcentric/mcdla/internal/dnn"
)

// Action says how a tensor needed by backprop is made available.
type Action int

const (
	// Stash moves the tensor to the backing store after last forward use
	// and prefetches it before backward use.
	Stash Action = iota
	// Recompute re-runs the (cheap) producing layer during backprop.
	Recompute
	// Keep leaves the tensor resident (oracle mode, or tensors that are
	// reused immediately).
	Keep
)

func (a Action) String() string {
	switch a {
	case Stash:
		return "stash"
	case Recompute:
		return "recompute"
	case Keep:
		return "keep"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// TensorPlan is the runtime's decision for one layer's output tensor.
type TensorPlan struct {
	// Producer is the layer whose output this is.
	Producer int
	// Action selects the backprop strategy.
	Action Action
	// Bytes is the tensor footprint (per device; the caller has already
	// applied the parallelization split).
	Bytes int64
	// OffloadAfter is the topological index of the last forward consumer —
	// the DMA offload is enqueued when that layer's forward completes.
	OffloadAfter int
	// NeededAt lists the backward steps (layer IDs, processed in reverse
	// topological order) that read this tensor; the prefetch must land
	// before the earliest-processed (i.e. highest) ID.
	NeededAt []int
}

// Plan is the per-iteration memory-overlaying schedule for one device.
type Plan struct {
	Graph *dnn.Graph
	// Tensors maps producer layer ID to its plan entry (only tensors that
	// backprop needs appear).
	Tensors map[int]TensorPlan
	// ExtraStash maps layer ID to additional per-layer backward state bytes
	// (recurrent gate activations) that is stashed alongside the inputs.
	ExtraStash map[int]int64
}

// Options tunes the planner.
type Options struct {
	// Oracle disables virtualization entirely: everything Keeps (the
	// infinite-memory DC-DLA(O) design point).
	Oracle bool
	// DisableRecompute stashes cheap layers too (used by ablation benches).
	DisableRecompute bool
}

// Analyze derives the memory-overlaying plan from the network DAG, exactly
// the policy of §IV: every expensive layer's input feature maps are pushed
// to the backing store after their last forward use and prefetched during
// backprop; cheap layers are recomputed. scale multiplies tensor footprints
// (model-parallel devices hold full-batch tensors; data-parallel devices
// hold 1/workers of the batch — callers express this by building the graph
// at the per-device batch, so scale is normally 1).
func Analyze(g *dnn.Graph, opt Options) *Plan {
	p := &Plan{
		Graph:      g,
		Tensors:    make(map[int]TensorPlan),
		ExtraStash: make(map[int]int64),
	}
	if opt.Oracle {
		return p
	}
	lastUse := g.LastForwardUse()
	for _, l := range g.Layers {
		if l.Kind == dnn.Input {
			continue
		}
		needsInputs := l.Kind.Expensive() || opt.DisableRecompute
		if !needsInputs {
			continue
		}
		for _, in := range l.Inputs {
			producer := g.Layer(in)
			entry, exists := p.Tensors[in]
			if !exists {
				action := Stash
				if producer.Kind != dnn.Input && !producer.Kind.Expensive() && !opt.DisableRecompute {
					// The producing layer is cheap: backprop recomputes it
					// from ITS stashed inputs instead of migrating this
					// tensor. Walking the recompute chain terminates at an
					// expensive or input layer whose output is stashed.
					action = Recompute
				}
				entry = TensorPlan{
					Producer:     in,
					Action:       action,
					Bytes:        producer.OutBytes(),
					OffloadAfter: lastUse[in],
				}
			}
			entry.NeededAt = append(entry.NeededAt, l.ID)
			p.Tensors[in] = entry
		}
		if l.StashExtraBytes > 0 {
			p.ExtraStash[l.ID] = l.StashExtraBytes
		}
	}
	// Recompute chains: a cheap producer's own stashed inputs must exist.
	// Ensure transitively that every Recompute tensor's producer inputs are
	// themselves planned (stash or further recompute).
	p.closeRecomputeChains(lastUse)
	return p
}

// closeRecomputeChains walks Recompute entries and plans their producers'
// inputs so the backward pass can actually rebuild the tensors.
func (p *Plan) closeRecomputeChains(lastUse []int) {
	g := p.Graph
	work := make([]int, 0, len(p.Tensors))
	for id, tp := range p.Tensors {
		if tp.Action == Recompute {
			work = append(work, id)
		}
	}
	// The chain walk mutates p.Tensors as it goes; a sorted worklist keeps
	// the resulting plan independent of map iteration order.
	sort.Ints(work)
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		producer := g.Layer(id)
		for _, in := range producer.Inputs {
			if _, exists := p.Tensors[in]; exists {
				continue
			}
			src := g.Layer(in)
			action := Stash
			if src.Kind != dnn.Input && !src.Kind.Expensive() {
				action = Recompute
				work = append(work, in)
			}
			p.Tensors[in] = TensorPlan{
				Producer:     in,
				Action:       action,
				Bytes:        src.OutBytes(),
				OffloadAfter: lastUse[in],
				NeededAt:     []int{id},
			}
		}
	}
}

// OffloadBytes reports the per-iteration bytes DMAed to the backing store.
func (p *Plan) OffloadBytes() int64 {
	var total int64
	for _, tp := range p.Tensors {
		if tp.Action == Stash {
			total += tp.Bytes
		}
	}
	for _, b := range p.ExtraStash {
		total += b
	}
	return total
}

// PrefetchBytes reports the per-iteration bytes DMAed back during backprop.
// Genuinely symmetric with OffloadBytes: every stash tensor is prefetched
// exactly once (before its first backward use) and stays resident for any
// later backward consumers, so the plan never re-fetches a shared tensor.
func (p *Plan) PrefetchBytes() int64 { return p.OffloadBytes() }

// TrafficBytes reports total backing-store traffic per iteration.
func (p *Plan) TrafficBytes() int64 { return p.OffloadBytes() + p.PrefetchBytes() }

// OffloadsAfter returns the stash tensor producer IDs whose offload is
// enqueued once the given layer's forward pass completes, plus that layer's
// own extra stash bytes (recurrent state leaves with the layer itself).
func (p *Plan) OffloadsAfter(layer int) (tensors []int, extraBytes int64) {
	for id, tp := range p.Tensors {
		if tp.Action == Stash && tp.OffloadAfter == layer {
			tensors = append(tensors, id)
		}
	}
	// The offload queue order feeds the event engine; sort so identical
	// plans replay identically.
	sort.Ints(tensors)
	return tensors, p.ExtraStash[layer]
}

// PrefetchFor returns the stash bytes that must be resident before the
// backward pass of the given layer runs: its planned input tensors plus its
// extra stash. Residency, not traffic: a tensor shared by several backward
// consumers appears in every consumer's PrefetchFor but moves only once (see
// PrefetchQueue).
func (p *Plan) PrefetchFor(layer int) int64 {
	var total int64
	l := p.Graph.Layer(layer)
	for _, in := range l.Inputs {
		if tp, ok := p.Tensors[in]; ok && tp.Action == Stash {
			total += tp.Bytes
		}
	}
	total += p.ExtraStash[layer]
	return total
}

// FirstBackwardUse reports the layer whose backward pass reads the stash
// tensor first — the highest consumer ID, since backprop walks the graph in
// reverse topological order. The prefetch must land before that layer's
// backward step; the tensor then stays resident for later (lower-ID)
// consumers. Returns -1 for tensors no backward step reads.
func (p *Plan) FirstBackwardUse(tensor int) int {
	tp, ok := p.Tensors[tensor]
	if !ok {
		return -1
	}
	first := -1
	for _, id := range tp.NeededAt {
		if id > first {
			first = id
		}
	}
	return first
}

// PrefetchItem is one DMA the backward pass issues from the backing store.
type PrefetchItem struct {
	// Layer is the backward step the transfer must precede.
	Layer int
	// Tensor is the stashed producer ID, or -1 for a layer's extra backward
	// state (recurrent gate activations).
	Tensor int
	// Bytes is the transfer size.
	Bytes int64
}

// PrefetchQueue returns the backward DMA schedule in issue order: layers in
// reverse topological order, each stash tensor appearing exactly once at the
// layer of its first backward use (its extra state alongside). The DMA
// engine streams the queue FIFO underneath the backward computation; summing
// the queue reproduces PrefetchBytes exactly, which is the invariant tying
// the planner's accounting to the engine's charged traffic.
func (p *Plan) PrefetchQueue() []PrefetchItem {
	g := p.Graph
	var queue []PrefetchItem
	seen := make(map[int]bool)
	for id := len(g.Layers) - 1; id >= 0; id-- {
		for _, in := range g.Layer(id).Inputs {
			tp, ok := p.Tensors[in]
			if !ok || tp.Action != Stash || seen[in] {
				continue
			}
			seen[in] = true
			queue = append(queue, PrefetchItem{Layer: id, Tensor: in, Bytes: tp.Bytes})
		}
		if extra := p.ExtraStash[id]; extra > 0 {
			queue = append(queue, PrefetchItem{Layer: id, Tensor: -1, Bytes: extra})
		}
	}
	return queue
}

// PrefetchSchedule is the indexed form of the prefetch queue the backward
// engines consume: the FIFO items plus, per layer, the queue positions whose
// transfers must have landed before that layer's backward step (its stashed
// inputs — wherever their first use put them — and its own extra state). All
// three engines (core, scale-out plane, overlay runtime) drive the same
// schedule; only the flow/event bookkeeping differs.
type PrefetchSchedule struct {
	Items []PrefetchItem

	plan   *Plan
	needed [][]int
}

// PrefetchSchedule builds the indexed schedule.
func (p *Plan) PrefetchSchedule() *PrefetchSchedule {
	s := &PrefetchSchedule{Items: p.PrefetchQueue(), plan: p}
	g := p.Graph
	tensorItem := make(map[int]int, len(s.Items))
	extraItem := make(map[int]int)
	for i, it := range s.Items {
		if it.Tensor >= 0 {
			tensorItem[it.Tensor] = i
		} else {
			extraItem[it.Layer] = i
		}
	}
	s.needed = make([][]int, len(g.Layers))
	for id, l := range g.Layers {
		for _, in := range l.Inputs {
			if tp, ok := p.Tensors[in]; ok && tp.Action == Stash {
				s.needed[id] = append(s.needed[id], tensorItem[in])
			}
		}
		if i, ok := extraItem[id]; ok {
			s.needed[id] = append(s.needed[id], i)
		}
	}
	return s
}

// NeededAt returns the queue indices that must be resident before the given
// layer's backward step, in deterministic (input, then extra-state) order.
func (s *PrefetchSchedule) NeededAt(layer int) []int { return s.needed[layer] }

// MaxNeededAt returns the highest queue index NeededAt(layer) contains — the
// position a FIFO issuer must have reached — or -1 when the layer needs
// nothing.
func (s *PrefetchSchedule) MaxNeededAt(layer int) int {
	max := -1
	for _, i := range s.needed[layer] {
		if i > max {
			max = i
		}
	}
	return max
}

// ItemName names a queue item for trace spans: the producing layer of the
// tensor, or "<layer>/state" for extra backward state.
func (s *PrefetchSchedule) ItemName(i int) string {
	if it := s.Items[i]; it.Tensor >= 0 {
		return s.plan.Graph.Layer(it.Tensor).Name
	}
	return s.plan.Graph.Layer(s.Items[i].Layer).Name + "/state"
}

// RecomputeFor returns the producer layer IDs that must be re-executed
// before the backward pass of the given layer (cheap producers on the
// recompute chain, nearest first).
func (p *Plan) RecomputeFor(layer int) []int {
	var out []int
	l := p.Graph.Layer(layer)
	var walk func(in int)
	walk = func(in int) {
		tp, ok := p.Tensors[in]
		if !ok || tp.Action != Recompute {
			return
		}
		// Rebuild this tensor by re-running its producer, which first needs
		// its own inputs (deeper in the chain).
		for _, pin := range p.Graph.Layer(in).Inputs {
			walk(pin)
		}
		out = append(out, in)
	}
	for _, in := range l.Inputs {
		walk(in)
	}
	return out
}

// Validate checks plan invariants: every stash entry has positive size and a
// legal offload point, every recompute chain terminates in stashed or input
// tensors.
func (p *Plan) Validate() error {
	for id, tp := range p.Tensors {
		if tp.Producer != id {
			return fmt.Errorf("vmem: tensor %d has mismatched producer %d", id, tp.Producer)
		}
		if tp.Bytes <= 0 {
			return fmt.Errorf("vmem: tensor %d has nonpositive size", id)
		}
		if tp.OffloadAfter < id {
			return fmt.Errorf("vmem: tensor %d offloads before it is produced", id)
		}
		if tp.Action == Recompute {
			for _, in := range p.Graph.Layer(id).Inputs {
				src := p.Graph.Layer(in)
				if src.Kind == dnn.Input {
					continue
				}
				if _, ok := p.Tensors[in]; !ok {
					return fmt.Errorf("vmem: recompute tensor %d has unplanned input %d", id, in)
				}
			}
		}
	}
	return nil
}
