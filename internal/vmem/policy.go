// Package vmem implements the DNN memory-virtualization runtime the paper
// builds on (§II-B, §IV): the DL framework's compile-time DAG analysis
// derives each tensor's reuse distance, and a runtime memory manager
// schedules software-managed memory-overlaying operations — DMA offloads of
// feature maps to the backing store after their last forward use, and
// prefetches back ahead of their backward use — overlapped with computation.
// Layers with short compute (activations, pooling, ...) are recomputed
// during backprop instead of migrated, the MXNet-style exception the paper
// adopts for a conservative evaluation (§IV footnote 4).
//
// The backing store is design-point specific: host memory over PCIe
// (DC-DLA), host memory over CPU-side links (HC-DLA), or deviceremote
// memory inside the memory-nodes (MC-DLA); vmem only decides what moves and
// when, not over which channel.
package vmem

import (
	"fmt"

	"github.com/memcentric/mcdla/internal/dnn"
)

// Action says how a tensor needed by backprop is made available.
type Action int

const (
	// Stash moves the tensor to the backing store after last forward use
	// and prefetches it before backward use.
	Stash Action = iota
	// Recompute re-runs the (cheap) producing layer during backprop.
	Recompute
	// Keep leaves the tensor resident (oracle mode, or tensors that are
	// reused immediately).
	Keep
)

func (a Action) String() string {
	switch a {
	case Stash:
		return "stash"
	case Recompute:
		return "recompute"
	case Keep:
		return "keep"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// TensorPlan is the runtime's decision for one layer's output tensor.
type TensorPlan struct {
	// Producer is the layer whose output this is.
	Producer int
	// Action selects the backprop strategy.
	Action Action
	// Bytes is the tensor footprint (per device; the caller has already
	// applied the parallelization split).
	Bytes int64
	// OffloadAfter is the topological index of the last forward consumer —
	// the DMA offload is enqueued when that layer's forward completes.
	OffloadAfter int
	// NeededAt lists the backward steps (layer IDs, processed in reverse
	// topological order) that read this tensor; the prefetch must land
	// before the earliest-processed (i.e. highest) ID.
	NeededAt []int
}

// Plan is the per-iteration memory-overlaying schedule for one device.
type Plan struct {
	Graph *dnn.Graph
	// Tensors maps producer layer ID to its plan entry (only tensors that
	// backprop needs appear).
	Tensors map[int]TensorPlan
	// ExtraStash maps layer ID to additional per-layer backward state bytes
	// (recurrent gate activations) that is stashed alongside the inputs.
	ExtraStash map[int]int64
}

// Options tunes the planner.
type Options struct {
	// Oracle disables virtualization entirely: everything Keeps (the
	// infinite-memory DC-DLA(O) design point).
	Oracle bool
	// DisableRecompute stashes cheap layers too (used by ablation benches).
	DisableRecompute bool
}

// Analyze derives the memory-overlaying plan from the network DAG, exactly
// the policy of §IV: every expensive layer's input feature maps are pushed
// to the backing store after their last forward use and prefetched during
// backprop; cheap layers are recomputed. scale multiplies tensor footprints
// (model-parallel devices hold full-batch tensors; data-parallel devices
// hold 1/workers of the batch — callers express this by building the graph
// at the per-device batch, so scale is normally 1).
func Analyze(g *dnn.Graph, opt Options) *Plan {
	p := &Plan{
		Graph:      g,
		Tensors:    make(map[int]TensorPlan),
		ExtraStash: make(map[int]int64),
	}
	if opt.Oracle {
		return p
	}
	lastUse := g.LastForwardUse()
	for _, l := range g.Layers {
		if l.Kind == dnn.Input {
			continue
		}
		needsInputs := l.Kind.Expensive() || opt.DisableRecompute
		if !needsInputs {
			continue
		}
		for _, in := range l.Inputs {
			producer := g.Layer(in)
			entry, exists := p.Tensors[in]
			if !exists {
				action := Stash
				if producer.Kind != dnn.Input && !producer.Kind.Expensive() && !opt.DisableRecompute {
					// The producing layer is cheap: backprop recomputes it
					// from ITS stashed inputs instead of migrating this
					// tensor. Walking the recompute chain terminates at an
					// expensive or input layer whose output is stashed.
					action = Recompute
				}
				entry = TensorPlan{
					Producer:     in,
					Action:       action,
					Bytes:        producer.OutBytes(),
					OffloadAfter: lastUse[in],
				}
			}
			entry.NeededAt = append(entry.NeededAt, l.ID)
			p.Tensors[in] = entry
		}
		if l.StashExtraBytes > 0 {
			p.ExtraStash[l.ID] = l.StashExtraBytes
		}
	}
	// Recompute chains: a cheap producer's own stashed inputs must exist.
	// Ensure transitively that every Recompute tensor's producer inputs are
	// themselves planned (stash or further recompute).
	p.closeRecomputeChains(lastUse)
	return p
}

// closeRecomputeChains walks Recompute entries and plans their producers'
// inputs so the backward pass can actually rebuild the tensors.
func (p *Plan) closeRecomputeChains(lastUse []int) {
	g := p.Graph
	work := make([]int, 0, len(p.Tensors))
	for id, tp := range p.Tensors {
		if tp.Action == Recompute {
			work = append(work, id)
		}
	}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		producer := g.Layer(id)
		for _, in := range producer.Inputs {
			if _, exists := p.Tensors[in]; exists {
				continue
			}
			src := g.Layer(in)
			action := Stash
			if src.Kind != dnn.Input && !src.Kind.Expensive() {
				action = Recompute
				work = append(work, in)
			}
			p.Tensors[in] = TensorPlan{
				Producer:     in,
				Action:       action,
				Bytes:        src.OutBytes(),
				OffloadAfter: lastUse[in],
				NeededAt:     []int{id},
			}
		}
	}
}

// OffloadBytes reports the per-iteration bytes DMAed to the backing store.
func (p *Plan) OffloadBytes() int64 {
	var total int64
	for _, tp := range p.Tensors {
		if tp.Action == Stash {
			total += tp.Bytes
		}
	}
	for _, b := range p.ExtraStash {
		total += b
	}
	return total
}

// PrefetchBytes reports the per-iteration bytes DMAed back during backprop.
// Symmetric with OffloadBytes under this policy.
func (p *Plan) PrefetchBytes() int64 { return p.OffloadBytes() }

// TrafficBytes reports total backing-store traffic per iteration.
func (p *Plan) TrafficBytes() int64 { return p.OffloadBytes() + p.PrefetchBytes() }

// OffloadsAfter returns the stash tensor producer IDs whose offload is
// enqueued once the given layer's forward pass completes, plus that layer's
// own extra stash bytes (recurrent state leaves with the layer itself).
func (p *Plan) OffloadsAfter(layer int) (tensors []int, extraBytes int64) {
	for id, tp := range p.Tensors {
		if tp.Action == Stash && tp.OffloadAfter == layer {
			tensors = append(tensors, id)
		}
	}
	return tensors, p.ExtraStash[layer]
}

// PrefetchFor returns the stash bytes that must be resident before the
// backward pass of the given layer runs: its planned input tensors plus its
// extra stash.
func (p *Plan) PrefetchFor(layer int) int64 {
	var total int64
	l := p.Graph.Layer(layer)
	for _, in := range l.Inputs {
		if tp, ok := p.Tensors[in]; ok && tp.Action == Stash {
			total += tp.Bytes
		}
	}
	total += p.ExtraStash[layer]
	return total
}

// RecomputeFor returns the producer layer IDs that must be re-executed
// before the backward pass of the given layer (cheap producers on the
// recompute chain, nearest first).
func (p *Plan) RecomputeFor(layer int) []int {
	var out []int
	l := p.Graph.Layer(layer)
	var walk func(in int)
	walk = func(in int) {
		tp, ok := p.Tensors[in]
		if !ok || tp.Action != Recompute {
			return
		}
		// Rebuild this tensor by re-running its producer, which first needs
		// its own inputs (deeper in the chain).
		for _, pin := range p.Graph.Layer(in).Inputs {
			walk(pin)
		}
		out = append(out, in)
	}
	for _, in := range l.Inputs {
		walk(in)
	}
	return out
}

// Validate checks plan invariants: every stash entry has positive size and a
// legal offload point, every recompute chain terminates in stashed or input
// tensors.
func (p *Plan) Validate() error {
	for id, tp := range p.Tensors {
		if tp.Producer != id {
			return fmt.Errorf("vmem: tensor %d has mismatched producer %d", id, tp.Producer)
		}
		if tp.Bytes <= 0 {
			return fmt.Errorf("vmem: tensor %d has nonpositive size", id)
		}
		if tp.OffloadAfter < id {
			return fmt.Errorf("vmem: tensor %d offloads before it is produced", id)
		}
		if tp.Action == Recompute {
			for _, in := range p.Graph.Layer(id).Inputs {
				src := p.Graph.Layer(in)
				if src.Kind == dnn.Input {
					continue
				}
				if _, ok := p.Tensors[in]; !ok {
					return fmt.Errorf("vmem: recompute tensor %d has unplanned input %d", id, in)
				}
			}
		}
	}
	return nil
}
