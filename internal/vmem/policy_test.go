package vmem

import (
	"testing"
	"testing/quick"

	"github.com/memcentric/mcdla/internal/dnn"
	"github.com/memcentric/mcdla/internal/units"
)

func TestAnalyzeAllBenchmarksValid(t *testing.T) {
	for _, name := range dnn.BenchmarkNames() {
		g := dnn.MustBuild(name, 32)
		p := Analyze(g, Options{})
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.OffloadBytes() <= 0 {
			t.Errorf("%s: no offload traffic planned", name)
		}
	}
}

func TestOracleHasNoTraffic(t *testing.T) {
	g := dnn.MustBuild("VGG-E", 32)
	p := Analyze(g, Options{Oracle: true})
	if p.TrafficBytes() != 0 {
		t.Fatalf("oracle plan has traffic %d", p.TrafficBytes())
	}
	if len(p.Tensors) != 0 {
		t.Fatalf("oracle plan has %d tensors", len(p.Tensors))
	}
}

func TestTrafficSymmetric(t *testing.T) {
	g := dnn.MustBuild("AlexNet", 64)
	p := Analyze(g, Options{})
	if p.OffloadBytes() != p.PrefetchBytes() {
		t.Fatal("offload and prefetch traffic must match under the stash policy")
	}
	if p.TrafficBytes() != 2*p.OffloadBytes() {
		t.Fatal("total traffic must be offload+prefetch")
	}
}

func TestStashMatchesGraphAccounting(t *testing.T) {
	// The plan's offload bytes must equal the graph-level StashBytes
	// (inputs of expensive layers counted once + extra state).
	for _, name := range dnn.BenchmarkNames() {
		g := dnn.MustBuild(name, 16)
		p := Analyze(g, Options{})
		// Plan may stash extra cheap-chain tensors for recompute
		// termination, so it can only be >= graph stash; for these
		// benchmarks the chains terminate in already-stashed tensors, so
		// equality holds except through Keep/recompute differences.
		if p.OffloadBytes() < g.StashBytes() {
			t.Errorf("%s: plan offload %d < graph stash %d", name, p.OffloadBytes(), g.StashBytes())
		}
	}
}

func TestCheapLayersRecomputed(t *testing.T) {
	g := dnn.MustBuild("AlexNet", 8)
	p := Analyze(g, Options{})
	// conv2 consumes pool1's output; pool1 is cheap, so its tensor must be
	// planned as Recompute, not Stash.
	var pool1, conv2 int
	for _, l := range g.Layers {
		switch l.Name {
		case "pool1":
			pool1 = l.ID
		case "conv2":
			conv2 = l.ID
		}
	}
	tp, ok := p.Tensors[pool1]
	if !ok {
		t.Fatal("pool1 output not planned")
	}
	if tp.Action != Recompute {
		t.Fatalf("pool1 action = %v, want recompute", tp.Action)
	}
	found := false
	for _, at := range tp.NeededAt {
		if at == conv2 {
			found = true
		}
	}
	if !found {
		t.Fatal("pool1 tensor not marked needed at conv2 backward")
	}
}

func TestRecomputeChainsTerminate(t *testing.T) {
	g := dnn.MustBuild("GoogLeNet", 8)
	p := Analyze(g, Options{})
	for id, tp := range p.Tensors {
		if tp.Action != Recompute {
			continue
		}
		chain := p.RecomputeFor(id)
		if len(chain) > 64 {
			t.Fatalf("recompute chain for %d too long (%d)", id, len(chain))
		}
	}
}

func TestRecomputeForOrdering(t *testing.T) {
	// AlexNet conv2's backward needs pool1 recomputed, which needs norm1
	// recomputed (cheap chain conv1 -> relu1 -> norm1 -> pool1); conv1's
	// stashed output terminates the chain. Chain must be ordered
	// producers-first.
	g := dnn.MustBuild("AlexNet", 8)
	p := Analyze(g, Options{})
	var conv2 int
	for _, l := range g.Layers {
		if l.Name == "conv2" {
			conv2 = l.ID
		}
	}
	chain := p.RecomputeFor(conv2)
	if len(chain) == 0 {
		t.Fatal("conv2 has no recompute chain")
	}
	for i := 1; i < len(chain); i++ {
		if chain[i] <= chain[i-1] {
			t.Fatalf("recompute chain not topologically ordered: %v", chain)
		}
	}
}

func TestDisableRecomputeStashesEverything(t *testing.T) {
	g := dnn.MustBuild("AlexNet", 8)
	base := Analyze(g, Options{})
	all := Analyze(g, Options{DisableRecompute: true})
	if all.OffloadBytes() <= base.OffloadBytes() {
		t.Fatalf("disable-recompute traffic %d not larger than policy traffic %d",
			all.OffloadBytes(), base.OffloadBytes())
	}
	for _, tp := range all.Tensors {
		if tp.Action == Recompute {
			t.Fatal("recompute entry despite DisableRecompute")
		}
	}
}

func TestOffloadsAfterLastUse(t *testing.T) {
	// ResNet residual tensors are consumed twice; the offload must wait
	// for the later consumer.
	g := dnn.MustBuild("ResNet", 8)
	p := Analyze(g, Options{})
	last := g.LastForwardUse()
	for id, tp := range p.Tensors {
		if tp.OffloadAfter != last[id] {
			t.Fatalf("tensor %d offloads after %d, want last use %d", id, tp.OffloadAfter, last[id])
		}
	}
}

func TestOffloadsAfterEnumeratesAllStashes(t *testing.T) {
	g := dnn.MustBuild("VGG-E", 8)
	p := Analyze(g, Options{})
	var sum int64
	for _, l := range g.Layers {
		tensors, extra := p.OffloadsAfter(l.ID)
		for _, id := range tensors {
			sum += p.Tensors[id].Bytes
		}
		sum += extra
	}
	if sum != p.OffloadBytes() {
		t.Fatalf("per-layer offload sum %d != plan total %d", sum, p.OffloadBytes())
	}
}

func TestExpensiveLayersCoveredByPrefetchOrRecompute(t *testing.T) {
	// Every conv/fc backward step must either prefetch stashed inputs or
	// rebuild them through a recompute chain (mid-network convs consume
	// post-ReLU tensors, which are recomputed, not stashed).
	g := dnn.MustBuild("VGG-E", 8)
	p := Analyze(g, Options{})
	for _, l := range g.Layers {
		if l.Kind == dnn.Conv || l.Kind == dnn.FC {
			if p.PrefetchFor(l.ID) <= 0 && len(p.RecomputeFor(l.ID)) == 0 {
				t.Fatalf("layer %s has neither prefetch nor recompute coverage", l.Name)
			}
		}
	}
}

func TestRNNExtraStashCounted(t *testing.T) {
	g := dnn.MustBuild("RNN-LSTM-1", 16)
	p := Analyze(g, Options{})
	// Every LSTM cell must contribute extra stash (gate activations).
	cells := 0
	for _, l := range g.Layers {
		if l.Kind == dnn.LSTMCell {
			cells++
			if p.ExtraStash[l.ID] <= 0 {
				t.Fatalf("cell %s has no extra stash", l.Name)
			}
		}
	}
	if cells != 25 {
		t.Fatalf("cell count = %d", cells)
	}
}

// Property: offload traffic scales linearly with batch size.
func TestPropertyTrafficLinearInBatch(t *testing.T) {
	f := func(raw uint8) bool {
		batch := int(raw%16) + 1
		g1 := dnn.MustBuild("GoogLeNet", batch)
		g2 := dnn.MustBuild("GoogLeNet", 2*batch)
		p1 := Analyze(g1, Options{})
		p2 := Analyze(g2, Options{})
		return p2.OffloadBytes() == 2*p1.OffloadBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementBandwidths(t *testing.T) {
	// Figure 10 with N=6, B=25: LOCAL reaches 75 GB/s, BW_AWARE 150 GB/s.
	if got := Local.RemoteBandwidth(6, units.GBps(25)).GBps(); got != 75 {
		t.Fatalf("LOCAL bandwidth = %g, want 75", got)
	}
	if got := BWAware.RemoteBandwidth(6, units.GBps(25)).GBps(); got != 150 {
		t.Fatalf("BW_AWARE bandwidth = %g, want 150", got)
	}
}

func TestPlacementLatencyHalved(t *testing.T) {
	d := units.Bytes(1) * units.GB
	l := Local.TransferLatency(d, 6, units.GBps(25))
	b := BWAware.TransferLatency(d, 6, units.GBps(25))
	if b*2 != l {
		t.Fatalf("BW_AWARE latency %v must be half of LOCAL %v", b, l)
	}
}

func TestSplitAllocation(t *testing.T) {
	left, right := Local.SplitAllocation(10 * PageBytes)
	if left != 10*PageBytes || right != 0 {
		t.Fatalf("LOCAL split = %d/%d", left, right)
	}
	left, right = BWAware.SplitAllocation(10 * PageBytes)
	if left != 5*PageBytes || right != 5*PageBytes {
		t.Fatalf("BW_AWARE even split = %d/%d", left, right)
	}
	// Odd page counts keep the sides within one page of each other.
	left, right = BWAware.SplitAllocation(3 * PageBytes)
	if left != PageBytes || right != 2*PageBytes {
		t.Fatalf("BW_AWARE odd split = %d/%d", left, right)
	}
	// Sub-page allocations never exceed the request.
	left, right = BWAware.SplitAllocation(100)
	if left+right != 100 {
		t.Fatalf("BW_AWARE sub-page split = %d/%d", left, right)
	}
}

// Property: BW_AWARE split halves are balanced within one page and conserve
// the allocation exactly.
func TestPropertySplitConserves(t *testing.T) {
	f := func(raw uint32) bool {
		d := units.Bytes(raw)
		left, right := BWAware.SplitAllocation(d)
		if left+right != d {
			return false
		}
		diff := left - right
		if diff < 0 {
			diff = -diff
		}
		return diff <= PageBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAddressSpaceResolve(t *testing.T) {
	a := AddressSpace{Local: 16 * units.GB, Left: 650 * units.GB, Right: 650 * units.GB}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr   units.Bytes
		region Region
		off    units.Bytes
	}{
		{0, RegionLocal, 0},
		{16*units.GB - 1, RegionLocal, 16*units.GB - 1},
		{16 * units.GB, RegionLeft, 0},
		{16*units.GB + 650*units.GB, RegionRight, 0},
		{a.Total() - 1, RegionRight, 650*units.GB - 1},
	}
	for _, c := range cases {
		r, off, err := a.Resolve(c.addr)
		if err != nil {
			t.Fatalf("resolve %d: %v", c.addr, err)
		}
		if r != c.region || off != c.off {
			t.Errorf("resolve %d = %v+%d, want %v+%d", c.addr, r, off, c.region, c.off)
		}
	}
	if _, _, err := a.Resolve(a.Total()); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, _, err := a.Resolve(-1); err == nil {
		t.Fatal("expected negative-address error")
	}
}

func TestAddressSpacePhysicalLimit(t *testing.T) {
	// 10.4 TB of remote memory fits well under 47-bit (128 TB) physical
	// addressing — the §III-B feasibility claim.
	a := AddressSpace{Local: 16 * units.GB, Left: 5200 * units.GB, Right: 5200 * units.GB}
	if err := a.Validate(); err != nil {
		t.Fatalf("10.4 TB pool should validate: %v", err)
	}
	huge := AddressSpace{Local: 16 * units.GB, Left: 1 << 47, Right: 0}
	if err := huge.Validate(); err == nil {
		t.Fatal("expected physical-addressing overflow error")
	}
}

func TestActionAndRegionStrings(t *testing.T) {
	if Stash.String() != "stash" || Recompute.String() != "recompute" || Keep.String() != "keep" {
		t.Fatal("action strings wrong")
	}
	if Local.String() != "LOCAL" || BWAware.String() != "BW_AWARE" {
		t.Fatal("placement strings wrong")
	}
	if RegionLocal.String() != "devicelocal" {
		t.Fatal("region string wrong")
	}
}
