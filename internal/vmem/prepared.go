package vmem

import (
	"github.com/memcentric/mcdla/internal/dnn"
)

// Prepared bundles a validated plan with the derived per-layer lookups the
// event engines consult in their inner loops. Analyze and Validate walk the
// whole graph, and OffloadsAfter / RecomputeFor / PrefetchSchedule re-derive
// sorted slices from map state on every call; Prepare does all of that once
// so simulations that share a schedule (design sweeps over bandwidth axes)
// pay for the analysis a single time. A Prepared value is immutable after
// construction and safe for concurrent use.
type Prepared struct {
	Plan  *Plan
	Sched *PrefetchSchedule
	// Offloads[id] holds the stash tensors whose offload is enqueued after
	// layer id's forward pass — OffloadsAfter's sorted tensor list.
	Offloads [][]int
	// Recompute[id] holds the producers re-executed before layer id's
	// backward pass — RecomputeFor's chain, nearest first.
	Recompute [][]int
}

// Prepare analyzes the graph, validates the plan, and materializes the
// per-layer offload and recompute tables plus the indexed prefetch schedule.
func Prepare(g *dnn.Graph, opt Options) (*Prepared, error) {
	plan := Analyze(g, opt)
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	pr := &Prepared{
		Plan:      plan,
		Sched:     plan.PrefetchSchedule(),
		Offloads:  make([][]int, len(g.Layers)),
		Recompute: make([][]int, len(g.Layers)),
	}
	for id := range g.Layers {
		pr.Offloads[id], _ = plan.OffloadsAfter(id)
		pr.Recompute[id] = plan.RecomputeFor(id)
	}
	return pr, nil
}
