package vmem_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/memcentric/mcdla/internal/accel"
	"github.com/memcentric/mcdla/internal/core"
	"github.com/memcentric/mcdla/internal/dnn"
	"github.com/memcentric/mcdla/internal/train"
	"github.com/memcentric/mcdla/internal/vmem"
)

// randomGraph builds a structurally random but valid network: a CNN-style
// trunk with random branches and merges, a recurrent chain, or a transformer
// stack, chosen by the seed. The generator only goes through the public
// Builder, so every graph it can produce is one the planner must handle.
func randomGraph(rng *rand.Rand) *dnn.Graph {
	switch rng.Intn(3) {
	case 0:
		return randomCNN(rng)
	case 1:
		return randomRNN(rng)
	default:
		return randomTransformer(rng)
	}
}

func randomCNN(rng *rand.Rand) *dnn.Graph {
	batch := 1 + rng.Intn(16)
	b := dnn.NewBuilder("rand-cnn", batch)
	x := b.Input(3, 64, 64)
	channels := 3
	for i := 0; i < 3+rng.Intn(6); i++ {
		switch rng.Intn(6) {
		case 0, 1:
			channels = 8 * (1 + rng.Intn(8))
			x = b.Conv(fmt.Sprintf("conv%d", i), x, channels, 3, 1, 1)
		case 2:
			x = b.ReLU(fmt.Sprintf("relu%d", i), x)
		case 3:
			x = b.BatchNorm(fmt.Sprintf("bn%d", i), x)
		case 4:
			// Residual pair: two branches off x merged with Add.
			a := b.Conv(fmt.Sprintf("branchA%d", i), x, channels, 3, 1, 1)
			c := b.Conv(fmt.Sprintf("branchB%d", i), x, channels, 3, 1, 1)
			x = b.Add(fmt.Sprintf("add%d", i), a, c)
		default:
			x = b.Dropout(fmt.Sprintf("drop%d", i), x)
		}
	}
	x = b.GlobalPool("gpool", x)
	x = b.FC("fc", x, 8*(1+rng.Intn(16)))
	b.Softmax("prob", x)
	return b.Finish()
}

func randomRNN(rng *rand.Rand) *dnn.Graph {
	batch := 1 + rng.Intn(16)
	hidden := 16 * (1 + rng.Intn(16))
	steps := 1 + rng.Intn(12)
	b := dnn.NewBuilder("rand-rnn", batch)
	x := b.InputVec(hidden)
	for t := 1; t <= steps; t++ {
		switch rng.Intn(3) {
		case 0:
			x = b.RNNCell(fmt.Sprintf("t%d", t), x, hidden, "rand-rnn/w")
		case 1:
			x = b.LSTMCell(fmt.Sprintf("t%d", t), x, hidden, "rand-rnn/w-lstm")
		default:
			x = b.GRUCell(fmt.Sprintf("t%d", t), x, hidden, "rand-rnn/w-gru")
		}
	}
	return b.FinishRecurrent(steps)
}

func randomTransformer(rng *rand.Rand) *dnn.Graph {
	heads := 1 + rng.Intn(4)
	cfg := dnn.TransformerConfig{
		Name:   "rand-xf",
		Layers: 1 + rng.Intn(3),
		DModel: heads * 8 * (1 + rng.Intn(4)),
		Heads:  heads,
		FFN:    16 * (1 + rng.Intn(8)),
		SeqLen: 8 * (1 + rng.Intn(8)),
	}
	return dnn.Transformer(cfg, 1+rng.Intn(8))
}

// TestPlanProperties drives the planner over a randomized graph grid and
// checks the §IV policy invariants the engines rely on:
//
//  1. every Stash tensor appears in the prefetch queue exactly once, at or
//     before (in backward order) its first backward use;
//  2. Recompute only ever selects cheap (!Expensive) non-input producers;
//  3. Stash only ever selects expensive or input producers (unless recompute
//     is disabled);
//  4. the queue's total bytes equal OffloadBytes — prefetch traffic is
//     symmetric with offload traffic.
func TestPlanProperties(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: generator produced invalid graph: %v", seed, err)
		}
		opt := vmem.Options{DisableRecompute: seed%5 == 4}
		p := vmem.Analyze(g, opt)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d (%s): plan invalid: %v", seed, g.Name, err)
		}

		queue := p.PrefetchQueue()
		seen := make(map[int]int)
		var queueBytes int64
		prevLayer := len(g.Layers)
		for _, it := range queue {
			if it.Layer > prevLayer {
				t.Fatalf("seed %d (%s): queue not in backward order: layer %d after %d", seed, g.Name, it.Layer, prevLayer)
			}
			prevLayer = it.Layer
			queueBytes += it.Bytes
			if it.Tensor < 0 {
				continue
			}
			seen[it.Tensor]++
			if first := p.FirstBackwardUse(it.Tensor); it.Layer < first {
				t.Fatalf("seed %d (%s): tensor %d queued at layer %d after its first backward use %d",
					seed, g.Name, it.Tensor, it.Layer, first)
			}
		}
		for id, tp := range p.Tensors {
			producer := g.Layer(id)
			switch tp.Action {
			case vmem.Stash:
				if n := seen[id]; n != 1 {
					t.Fatalf("seed %d (%s): stash tensor %d prefetched %d times, want exactly 1", seed, g.Name, id, n)
				}
				if !opt.DisableRecompute && producer.Kind != dnn.Input && !producer.Kind.Expensive() {
					t.Fatalf("seed %d (%s): cheap tensor %d (%v) stashed with recompute enabled", seed, g.Name, id, producer.Kind)
				}
			case vmem.Recompute:
				if producer.Kind == dnn.Input || producer.Kind.Expensive() {
					t.Fatalf("seed %d (%s): recompute selected %v layer %d", seed, g.Name, producer.Kind, id)
				}
				if seen[id] != 0 {
					t.Fatalf("seed %d (%s): recompute tensor %d appears in the prefetch queue", seed, g.Name, id)
				}
			}
		}
		if queueBytes != p.OffloadBytes() {
			t.Fatalf("seed %d (%s): prefetch queue carries %d bytes, offload %d — not symmetric",
				seed, g.Name, queueBytes, p.OffloadBytes())
		}
		if p.TrafficBytes() != 2*p.OffloadBytes() {
			t.Fatalf("seed %d (%s): traffic %d != 2x offload %d", seed, g.Name, p.TrafficBytes(), p.OffloadBytes())
		}
	}
}

// TestPlanTrafficMatchesEngine ties the planner to the engine: on a
// randomized graph grid, the backing-store traffic core.Simulate charges is
// exactly the plan's offload bytes out plus the same bytes back. A drift in
// either direction means the engine is inventing or dropping DMAs the plan
// never scheduled.
func TestPlanTrafficMatchesEngine(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		g := randomGraph(rng)
		s, err := train.BuildGraph(g, g.Batch, 1, train.DataParallel, train.FP16)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, g.Name, err)
		}
		plan := vmem.Analyze(g, vmem.Options{})
		for _, d := range []core.Design{core.NewDCDLA(accel.Default(), 1), core.NewMCDLAB(accel.Default(), 1)} {
			r, err := core.Simulate(d, s)
			if err != nil {
				t.Fatalf("seed %d (%s) × %s: %v", seed, g.Name, d.Name, err)
			}
			if got, want := int64(r.VirtTraffic), plan.TrafficBytes(); got != want {
				t.Fatalf("seed %d (%s) × %s: engine charged %d bytes, plan schedules %d",
					seed, g.Name, d.Name, got, want)
			}
		}
	}
}

// TestOracleHasNoPlan pins the oracle mode: no tensors, no queue, no traffic.
func TestOracleHasNoPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := vmem.Analyze(randomGraph(rng), vmem.Options{Oracle: true})
	if len(p.Tensors) != 0 || len(p.PrefetchQueue()) != 0 || p.TrafficBytes() != 0 {
		t.Fatalf("oracle plan moves data: %d tensors, %d queued, %d bytes",
			len(p.Tensors), len(p.PrefetchQueue()), p.TrafficBytes())
	}
}
